#ifndef AQUA_EXEC_PARALLEL_H_
#define AQUA_EXEC_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "aqua/common/exec_context.h"
#include "aqua/common/result.h"
#include "aqua/exec/thread_pool.h"

namespace aqua::exec {

/// How a parallel region may execute. The policy never changes *what* is
/// computed — work is partitioned into chunks as a pure function of the
/// problem size, so answers are identical at every thread count — only how
/// many workers drain the chunks.
struct ExecPolicy {
  /// Worker upper bound for a parallel region. 1 = run inline on the
  /// calling thread (the serial path; the pool is never touched).
  /// 0 or negative = hardware concurrency.
  int threads = 1;

  /// Pool override for tests; null = ThreadPool::Shared().
  ThreadPool* pool = nullptr;

  int ResolvedThreads() const {
    return threads >= 1 ? threads
                        : static_cast<int>(ThreadPool::HardwareThreads());
  }

  bool Serial() const { return ResolvedThreads() <= 1; }
};

/// One contiguous slice [begin, end) of the iteration space.
struct Chunk {
  size_t begin = 0;
  size_t end = 0;
  size_t index = 0;

  size_t size() const { return end - begin; }
};

/// Fixed partition of [0, n) into ceil(n / chunk_size) chunks — a pure
/// function of (n, chunk_size), never of the thread count, which is what
/// keeps budget splits and per-chunk RNG streams identical for any
/// `--threads` value.
std::vector<Chunk> MakeChunks(size_t n, size_t chunk_size);

/// Runs `body` once per chunk of [0, n), possibly concurrently.
///
/// Budget: the parent context's *remaining* step/byte budget is split
/// across the chunks proportionally to `weights` (default: chunk sizes;
/// the shares sum to the remaining budget exactly), and each chunk charges
/// its own child context — workers never share a counter, so the
/// accounting is race-free by construction. At the join every child's
/// charges are absorbed back into the parent, so `parent->steps()` ends up
/// the exact sum of what the chunks charged.
///
/// Deadline and cancellation: children share the parent's absolute
/// deadline and observe a group token linked to the parent's token. The
/// first chunk to fail fires the group token, so siblings polling their
/// child context stop promptly and queued chunks are abandoned; the call
/// returns only after every worker involved has exited (no detached
/// tasks).
///
/// Error reporting: the lowest-index failure whose code is not kCancelled
/// wins (deterministic for deterministic bodies); pure group-cancellation
/// statuses are suppressed unless the caller's own token fired.
///
/// `body` must confine itself to its chunk and its child context; writes
/// to caller state must target disjoint, pre-sized slots (index by
/// chunk.index or the element range).
using ChunkBody = std::function<Status(const Chunk&, ExecContext*)>;
Status ParallelFor(const ExecPolicy& policy, size_t n, size_t chunk_size,
                   ExecContext* parent, const ChunkBody& body,
                   const std::vector<uint64_t>* weights = nullptr);

/// Map-reduce on top of ParallelFor: `map` produces one T per chunk
/// (concurrently), then `reduce` folds the per-chunk values left to right
/// in chunk-index order — a fixed reduction order, so floating-point
/// results are identical at every thread count.
template <typename T, typename MapFn, typename ReduceFn>
Result<T> ParallelReduce(const ExecPolicy& policy, size_t n,
                         size_t chunk_size, ExecContext* parent, T init,
                         const MapFn& map, const ReduceFn& reduce,
                         const std::vector<uint64_t>* weights = nullptr) {
  std::vector<T> slots(n == 0 ? 0 : (n + chunk_size - 1) / chunk_size);
  AQUA_RETURN_NOT_OK(ParallelFor(
      policy, n, chunk_size, parent,
      [&](const Chunk& chunk, ExecContext* ctx) -> Status {
        AQUA_ASSIGN_OR_RETURN(slots[chunk.index], map(chunk, ctx));
        return Status::OK();
      },
      weights));
  T acc = std::move(init);
  for (T& slot : slots) acc = reduce(std::move(acc), std::move(slot));
  return acc;
}

}  // namespace aqua::exec

#endif  // AQUA_EXEC_PARALLEL_H_
