#include "aqua/exec/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <system_error>
#include <utility>

#include "aqua/common/failpoint.h"
#include "aqua/obs/metrics.h"
#include "aqua/obs/trace.h"

namespace aqua::exec {
namespace {

/// Metric handles are cached once: registry cells live forever, so the
/// hot paths (Submit, task execution) never take the registry lock.
struct PoolMetrics {
  obs::Counter tasks_total;
  obs::Counter threads_started_total;
  obs::Counter queue_rejected_total;
  obs::Gauge live_queue_depth;
  obs::Histogram queue_depth;
  obs::Histogram task_latency_us;
};

PoolMetrics& Metrics() {
  static PoolMetrics* m = [] {
    auto& registry = obs::MetricsRegistry::Default();
    auto* metrics = new PoolMetrics();
    metrics->tasks_total = registry.GetCounter("aqua_pool_tasks_total");
    metrics->threads_started_total =
        registry.GetCounter("aqua_pool_threads_started_total");
    metrics->queue_rejected_total =
        registry.GetCounter("aqua_pool_queue_rejected_total");
    metrics->live_queue_depth = registry.GetGauge("aqua_exec_queue_depth");
    metrics->queue_depth = registry.GetHistogram(
        "aqua_pool_queue_depth", {}, {0, 1, 2, 4, 8, 16, 32, 64, 128, 256});
    metrics->task_latency_us =
        registry.GetHistogram("aqua_pool_task_latency_us");
    return metrics;
  }();
  return *m;
}

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads)
    : num_threads_(std::max(1u, num_threads)) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(HardwareThreads());  // never freed
  return *pool;
}

unsigned ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

bool ThreadPool::Submit(std::function<void()> task) {
  if (!AQUA_FAILPOINT_STATUS("exec/pool/spawn").ok()) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) StartLocked();
    if (workers_.empty()) return false;  // no worker would ever run it
    if (queue_limit_ > 0 && queue_.size() >= queue_limit_) {
      // Overload converts to caller-side execution (backpressure), never
      // to unbounded queue memory.
      Metrics().queue_rejected_total.Increment();
      return false;
    }
    Metrics().queue_depth.Observe(static_cast<double>(queue_.size()));
    queue_.push_back(std::move(task));
    Metrics().live_queue_depth.Increment();
  }
  Metrics().tasks_total.Increment();
  cv_.notify_one();
  return true;
}

void ThreadPool::set_queue_limit(size_t limit) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_limit_ = limit;
}

size_t ThreadPool::queue_limit() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_limit_;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::StartLocked() {
  started_ = true;
  workers_.reserve(num_threads_);
  for (unsigned i = 0; i < num_threads_; ++i) {
    try {
      workers_.emplace_back([this] { WorkerLoop(); });
    } catch (const std::system_error&) {
      // Thread creation failed (resource limits). Run with the workers
      // that did spawn; zero spawned workers makes Submit return false.
      break;
    }
  }
  Metrics().threads_started_total.Increment(workers_.size());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      Metrics().live_queue_depth.Decrement();
    }
    // Delay-only failpoint modelling a slow worker; a worker cannot
    // surface a Status, so an `error` spec here is counted as fired but
    // otherwise ignored (honors_error=false in the site inventory).
    (void)AQUA_FAILPOINT_STATUS("exec/pool/run");
    const auto start = std::chrono::steady_clock::now();
    {
      obs::TraceSpan span("exec::Task");
      task();
    }
    Metrics().task_latency_us.Observe(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
}

}  // namespace aqua::exec
