#ifndef AQUA_COMMON_CHECK_H_
#define AQUA_COMMON_CHECK_H_

#include <sstream>

namespace aqua {

/// Whether *paranoid* invariant checking is active. Paranoid checks are the
/// expensive ones (O(n) probability-mass sums over DP rows, per-alternative
/// p-mapping validation on algorithm entry); they are always compiled in
/// behind this cheap runtime gate so a Release binary can turn them on.
///
/// The default is ON when the library was compiled with `-DAQUA_PARANOID`
/// (the CMake option of the same name) or in debug builds (`NDEBUG` unset),
/// and OFF otherwise. The environment variable `AQUA_PARANOID=1` forces the
/// gate open at process start regardless of how the library was compiled.
bool ParanoidChecksEnabled();

/// Overrides the paranoid gate at runtime (used by tests to exercise the
/// failure paths in a default build). Returns the previous value.
bool SetParanoidChecks(bool enabled);

namespace check_internal {

/// Collects the failure message streamed into a failing AQUA_CHECK and
/// aborts in its destructor, after printing
///   `CHECK failed at <file>:<line>: <condition> <streamed message>`
/// to stderr. The abort (rather than an exception or a Status) is
/// deliberate: a failed check means an *internal invariant* is broken and
/// continuing would serve corrupt answers; aborting also makes the failure
/// visible to death tests and fuzzers.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;
  [[noreturn]] ~CheckFailure();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows the streamed message expression in the non-failing arm of the
/// AQUA_CHECK ternary. `&` binds looser than `<<`, so the whole
/// `stream() << a << b` chain is evaluated (and discarded into the failure
/// message) before this operator runs.
struct Voidify {
  void operator&(std::ostream&) const {}
};

/// True iff `p` is a probability up to the library-wide floating-point
/// tolerance: matcher scores and DP cells are normalised in floating point,
/// so values a few ulps outside [0, 1] are numerical noise, not corruption.
inline constexpr double kProbEps = 1e-9;
inline bool IsProbability(double p) {
  return p >= -kProbEps && p <= 1.0 + kProbEps;
}

}  // namespace check_internal
}  // namespace aqua

/// Always-on invariant check (Release included). Streams like an ostream:
///   AQUA_CHECK(lo <= hi) << "interval inverted, lo=" << lo;
/// On failure prints the location, the condition text, and the streamed
/// message, then aborts. Use for cheap checks on cold-to-warm paths; use
/// AQUA_DCHECK in per-element hot loops and ParanoidChecksEnabled() for
/// checks that are themselves expensive to evaluate.
#define AQUA_CHECK(cond)                                            \
  (cond) ? (void)0                                                  \
         : ::aqua::check_internal::Voidify() &                      \
               ::aqua::check_internal::CheckFailure(__FILE__, __LINE__, \
                                                    #cond)          \
                   .stream()

/// Debug-tier check: active when `NDEBUG` is unset (Debug builds) or the
/// library was compiled with `-DAQUA_PARANOID=ON`; otherwise the condition
/// and message still type-check but compile to nothing.
#if !defined(NDEBUG) || defined(AQUA_PARANOID)
#define AQUA_DCHECK(cond) AQUA_CHECK(cond)
#else
#define AQUA_DCHECK(cond) \
  while (false) AQUA_CHECK(cond)
#endif

/// Checks that `p` lies in [0, 1] up to the shared FP tolerance
/// (check_internal::kProbEps). `p` is evaluated once on the passing path
/// and once more to build the failure message.
#define AQUA_CHECK_PROB(p)                                      \
  AQUA_CHECK(::aqua::check_internal::IsProbability((p)))        \
      << "probability outside [0, 1]: " << (p) << " "

#if !defined(NDEBUG) || defined(AQUA_PARANOID)
#define AQUA_DCHECK_PROB(p) AQUA_CHECK_PROB(p)
#else
#define AQUA_DCHECK_PROB(p) \
  while (false) AQUA_CHECK_PROB(p)
#endif

/// Checks that `lo <= hi`, i.e. the pair forms a valid closed interval
/// (range answers, CI bounds). Both arguments may be re-evaluated to build
/// the failure message.
#define AQUA_CHECK_INTERVAL(lo, hi)                                  \
  AQUA_CHECK((lo) <= (hi)) << "inverted interval: low=" << (lo)      \
                           << " high=" << (hi) << " "

#if !defined(NDEBUG) || defined(AQUA_PARANOID)
#define AQUA_DCHECK_INTERVAL(lo, hi) AQUA_CHECK_INTERVAL(lo, hi)
#else
#define AQUA_DCHECK_INTERVAL(lo, hi) \
  while (false) AQUA_CHECK_INTERVAL(lo, hi)
#endif

#endif  // AQUA_COMMON_CHECK_H_
