#ifndef AQUA_COMMON_DATE_H_
#define AQUA_COMMON_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "aqua/common/result.h"

namespace aqua {

/// A calendar date stored as days since the civil epoch 1970-01-01.
///
/// The representation is a plain `int32_t`, so dates order, hash, and copy
/// like integers; conversion to and from (year, month, day) uses Howard
/// Hinnant's proleptic-Gregorian algorithms and is exact over the full
/// int32 range.
class Date {
 public:
  /// Constructs the epoch date (1970-01-01).
  constexpr Date() : days_(0) {}

  /// Constructs a date from a raw day count since 1970-01-01.
  constexpr explicit Date(int32_t days_since_epoch)
      : days_(days_since_epoch) {}

  /// Builds a date from civil year/month/day. Fails if the triple is not a
  /// valid Gregorian calendar date (month outside 1..12 or day outside the
  /// month's length).
  static Result<Date> FromYmd(int year, int month, int day);

  /// Parses "YYYY-MM-DD", "YYYY/M/D", or the paper's US style "M-D-YYYY" /
  /// "M/D/YYYY" (e.g. "1-20-2008"); the US form is recognised by the
  /// 4-digit trailing year.
  static Result<Date> Parse(std::string_view text);

  /// Day count since 1970-01-01 (negative before the epoch).
  constexpr int32_t days_since_epoch() const { return days_; }

  /// Civil calendar components of this date.
  struct Ymd {
    int year;
    int month;  // 1..12
    int day;    // 1..31
  };
  Ymd ToYmd() const;

  /// ISO "YYYY-MM-DD".
  std::string ToString() const;

  /// Returns this date shifted by `n` days.
  constexpr Date AddDays(int32_t n) const { return Date(days_ + n); }

  friend constexpr bool operator==(Date a, Date b) {
    return a.days_ == b.days_;
  }
  friend constexpr auto operator<=>(Date a, Date b) {
    return a.days_ <=> b.days_;
  }

 private:
  int32_t days_;
};

}  // namespace aqua

#endif  // AQUA_COMMON_DATE_H_
