#include "aqua/common/random.h"

#include <cassert>
#include <cmath>

namespace aqua {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  uint64_t z = x + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  // Same stream as the classic stateful SplitMix64 expansion: state_[i]
  // mixes seed + (i+1) * golden-ratio increment.
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
    sm += 0x9E3779B97F4A7C15ULL;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = ~0ULL - ~0ULL % span;
  uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return lo + static_cast<int64_t>(x % span);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

size_t Rng::Categorical(const std::vector<double>& probs) {
  assert(!probs.empty());
  double x = NextDouble();
  for (size_t i = 0; i + 1 < probs.size(); ++i) {
    if (x < probs[i]) return i;
    x -= probs[i];
  }
  return probs.size() - 1;
}

std::vector<double> Rng::RandomProbabilities(size_t k) {
  assert(k >= 1);
  std::vector<double> p(k);
  double total = 0.0;
  for (auto& x : p) {
    // Offset keeps every probability strictly positive, matching the paper's
    // requirement that each candidate mapping is genuinely possible.
    x = NextDouble() + 1e-3;
    total += x;
  }
  for (auto& x : p) x /= total;
  return p;
}

}  // namespace aqua
