#ifndef AQUA_COMMON_FAILPOINT_H_
#define AQUA_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "aqua/common/result.h"
#include "aqua/common/status.h"

namespace aqua::fault {

/// Deterministic fault injection ("failpoints", after the discipline used
/// by production datastores): named sites compiled into the library where
/// a configured fault — an error return, a delay, or a partial result —
/// can be triggered on demand, so every recovery path (retries, the
/// degradation ladder, linked cancellation) is testable without waiting
/// for the OS to misbehave.
///
/// Cost when idle: a site that is not armed is one relaxed atomic load
/// (`Armed()` reads a process-wide active-failpoint count); the registry
/// lock is only taken once at least one failpoint is enabled anywhere.
///
/// Configuration surfaces:
///   - programmatic: `Enable("storage/csv/read-file", "once*error(unavailable)")`
///   - environment:  `AQUA_FAILPOINTS="site=spec;site2=spec2"` via
///                    `ConfigureFromEnv()`
///   - CLI:          `aqua_cli --failpoint=site:spec` (repeatable)
///
/// Spec grammar (documented in DESIGN.md §9):
///
///   spec    := [trigger '*'] action
///   trigger := 'once' | 'every(' N ')' | 'after(' N ')'
///            | 'p(' PROB [',' SEED] ')'
///   action  := 'off'
///            | 'error(' CODE [',' MESSAGE] ')'
///            | 'delay(' MILLIS ')'
///            | 'partial'
///
/// CODE is a canonical status-code name (see StatusCodeFromString), e.g.
/// `unavailable` (the transient class the retry layer retries) or
/// `resource-exhausted` (what drives the engine's degradation ladder).
/// With no trigger the action fires on every evaluation. `p` draws from a
/// deterministic per-site SplitMix64 stream, so a seeded probabilistic
/// failpoint fires on the same evaluations in every run.

/// What an armed failpoint does when its trigger fires.
enum class FaultKind {
  kOff,      ///< registered but inert (same as not enabled)
  kError,    ///< Evaluate returns the configured Status
  kDelay,    ///< Evaluate sleeps `delay_ms`, then returns OK
  kPartial,  ///< Evaluate returns OK; sites that support partial results
             ///< poll `InjectPartial(site)` and truncate their output
};

/// How often an armed failpoint fires.
enum class FaultTrigger {
  kAlways,  ///< every evaluation
  kOnce,    ///< the first evaluation only
  kEveryN,  ///< evaluations N, 2N, 3N, ... (1-based)
  kAfterN,  ///< every evaluation after the first N
  kProb,    ///< each evaluation independently with probability `prob`
};

/// Parsed form of one failpoint spec.
struct FailSpec {
  FaultTrigger trigger = FaultTrigger::kAlways;
  uint64_t n = 0;        ///< parameter of every(N) / after(N)
  double prob = 0.0;     ///< parameter of p(PROB, ...)
  uint64_t seed = 0;     ///< PRNG seed of p(...); 0 picks a default
  FaultKind kind = FaultKind::kOff;
  StatusCode code = StatusCode::kUnavailable;  ///< error(...) status code
  std::string message;   ///< error(...) message; defaulted when empty
  int64_t delay_ms = 0;  ///< delay(...) duration

  /// Renders the spec back in the grammar above (stable for reports).
  std::string ToString() const;
};

/// Parses a spec string (grammar above). Whitespace-intolerant by design:
/// specs travel through env vars and CLI flags where stray spaces are
/// almost always quoting bugs.
Result<FailSpec> ParseSpec(std::string_view spec);

/// One entry of the compiled-in site inventory.
struct SiteInfo {
  std::string_view name;
  std::string_view description;
  /// False for sites on paths that cannot surface a Status (e.g. inside a
  /// worker thread's task loop); an `error` spec there is counted as fired
  /// but otherwise ignored, and the chaos runner expects answers to be
  /// unaffected.
  bool honors_error = true;
};

/// Every failpoint site compiled into the library, in stable order. The
/// chaos runner enumerates this list; the `chaos_inventory_test` and the
/// `naked-failpoint` lint rule enforce that it matches the AQUA_FAILPOINT
/// sites present in the source exactly.
const std::vector<SiteInfo>& AllSites();

/// True when `name` is in `AllSites()`.
bool IsKnownSite(std::string_view name);

/// True iff at least one failpoint is currently enabled, as one relaxed
/// atomic load — the only cost a disabled site pays.
bool Armed();

/// Arms `site` with `spec` (string or parsed). Fails with kNotFound for a
/// site not in the inventory (catching config typos) and kInvalidArgument
/// for an unparseable spec. Enabling a site that is already enabled
/// replaces its spec and resets its counters.
Status Enable(std::string_view site, std::string_view spec);
Status Enable(std::string_view site, const FailSpec& spec);

/// Disarms one site / every site. Disabling an inert site is a no-op.
void Disable(std::string_view site);
void DisableAll();

/// Applies a `site=spec;site2=spec2` configuration string (`;` or newline
/// separated; empty items ignored). On error, earlier items stay applied.
Status ConfigureFromString(std::string_view config);

/// Applies the AQUA_FAILPOINTS environment variable (no-op when unset).
Status ConfigureFromEnv();

/// Full evaluation path behind AQUA_FAILPOINT; call through the macro (or
/// guard with `Armed()`) so disabled builds stay at one atomic load.
Status Evaluate(std::string_view site);

/// True when `site` is armed with a `partial` action whose trigger fires
/// now. Sites that support partial results poll this *instead of* (not in
/// addition to) the error path truncating their output.
bool InjectPartial(std::string_view site);

/// Evaluations / fault activations of `site` since it was last enabled.
/// Zero for disabled sites. The chaos runner uses `fire_count` to check a
/// configured fault actually triggered.
struct SiteStats {
  uint64_t hit_count = 0;
  uint64_t fire_count = 0;
};
SiteStats StatsFor(std::string_view site);

/// RAII enable/disable for tests: arms `site` in the constructor, disarms
/// it in the destructor.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string_view site, std::string_view spec)
      : site_(site), status_(Enable(site, spec)) {}
  ~ScopedFailpoint() { Disable(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  /// Whether Enable succeeded; tests should assert this.
  const Status& status() const { return status_; }

 private:
  std::string site_;
  Status status_;
};

}  // namespace aqua::fault

/// Statement form: evaluates the failpoint and propagates an injected
/// error out of the enclosing function (which must return Status or
/// Result<T>). Compiles to one relaxed atomic load when no failpoint is
/// enabled anywhere in the process.
#define AQUA_FAILPOINT(site)                                         \
  do {                                                               \
    if (::aqua::fault::Armed()) {                                    \
      ::aqua::Status _aqua_fp_status = ::aqua::fault::Evaluate(site); \
      if (!_aqua_fp_status.ok()) return _aqua_fp_status;             \
    }                                                                \
  } while (false)

/// Expression form for contexts that cannot return a Status (void worker
/// loops) or want to route the injected error themselves. Yields
/// Status::OK() when disarmed.
#define AQUA_FAILPOINT_STATUS(site)                     \
  (::aqua::fault::Armed() ? ::aqua::fault::Evaluate(site) \
                          : ::aqua::Status::OK())

#endif  // AQUA_COMMON_FAILPOINT_H_
