#include "aqua/common/failpoint.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "aqua/common/random.h"
#include "aqua/common/string_util.h"

namespace aqua::fault {
namespace {

/// Count of enabled sites. `Armed()` reads this relaxed; everything else
/// about the registry lives behind `RegistryMutex()`. The count is only
/// written under the mutex, so it can never disagree with the map for long
/// enough to matter: a site disabled concurrently with an evaluation at
/// worst evaluates to OK.
std::atomic<int> g_armed_sites{0};

struct ActiveSite {
  FailSpec spec;
  uint64_t hits = 0;   // evaluations since Enable
  uint64_t fires = 0;  // trigger activations since Enable
  uint64_t prng = 0;   // SplitMix64 state for p(...) triggers
};

std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::unordered_map<std::string, ActiveSite>& Registry() {
  static auto* registry = new std::unordered_map<std::string, ActiveSite>();
  return *registry;
}

Result<uint64_t> ParseU64(std::string_view text) {
  uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("bad integer '" + std::string(text) +
                                   "' in failpoint spec");
  }
  return v;
}

Result<double> ParseProb(std::string_view text) {
  try {
    size_t used = 0;
    const double v = std::stod(std::string(text), &used);
    if (used != text.size() || !(v >= 0.0 && v <= 1.0)) {
      throw std::invalid_argument("range");
    }
    return v;
  } catch (...) {
    return Status::InvalidArgument("bad probability '" + std::string(text) +
                                   "' in failpoint spec (expected [0,1])");
  }
}

/// Splits "name(args)" into name and args; `args` empty (and `has_args`
/// false) when there are no parentheses.
struct Call {
  std::string_view name;
  std::string_view args;
  bool has_args = false;
};

Result<Call> ParseCall(std::string_view text) {
  const size_t open = text.find('(');
  if (open == std::string_view::npos) return Call{text, {}, false};
  if (text.empty() || text.back() != ')') {
    return Status::InvalidArgument("unbalanced parentheses in failpoint "
                                   "spec term '" + std::string(text) + "'");
  }
  return Call{text.substr(0, open),
              text.substr(open + 1, text.size() - open - 2), true};
}

Status ParseTrigger(std::string_view text, FailSpec* spec) {
  AQUA_ASSIGN_OR_RETURN(Call call, ParseCall(text));
  if (call.name == "once") {
    if (call.has_args) {
      return Status::InvalidArgument("'once' takes no arguments");
    }
    spec->trigger = FaultTrigger::kOnce;
    return Status::OK();
  }
  if (call.name == "every") {
    AQUA_ASSIGN_OR_RETURN(spec->n, ParseU64(call.args));
    if (spec->n == 0) {
      return Status::InvalidArgument("every(N) requires N >= 1");
    }
    spec->trigger = FaultTrigger::kEveryN;
    return Status::OK();
  }
  if (call.name == "after") {
    AQUA_ASSIGN_OR_RETURN(spec->n, ParseU64(call.args));
    spec->trigger = FaultTrigger::kAfterN;
    return Status::OK();
  }
  if (call.name == "p") {
    std::string_view args = call.args;
    const size_t comma = args.find(',');
    if (comma != std::string_view::npos) {
      AQUA_ASSIGN_OR_RETURN(spec->seed, ParseU64(args.substr(comma + 1)));
      args = args.substr(0, comma);
    }
    AQUA_ASSIGN_OR_RETURN(spec->prob, ParseProb(args));
    spec->trigger = FaultTrigger::kProb;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown failpoint trigger '" +
                                 std::string(call.name) +
                                 "' (expected once|every(N)|after(N)|p(P))");
}

Status ParseAction(std::string_view text, FailSpec* spec) {
  AQUA_ASSIGN_OR_RETURN(Call call, ParseCall(text));
  if (call.name == "off") {
    spec->kind = FaultKind::kOff;
    return Status::OK();
  }
  if (call.name == "partial") {
    spec->kind = FaultKind::kPartial;
    return Status::OK();
  }
  if (call.name == "delay") {
    AQUA_ASSIGN_OR_RETURN(const uint64_t ms, ParseU64(call.args));
    spec->kind = FaultKind::kDelay;
    spec->delay_ms = static_cast<int64_t>(ms);
    return Status::OK();
  }
  if (call.name == "error") {
    spec->kind = FaultKind::kError;
    std::string_view args = call.args;
    if (args.empty()) return Status::OK();  // default code + message
    const size_t comma = args.find(',');
    std::string_view code_name =
        comma == std::string_view::npos ? args : args.substr(0, comma);
    const auto code = StatusCodeFromString(code_name);
    if (!code.has_value() || *code == StatusCode::kOk) {
      return Status::InvalidArgument("unknown status code '" +
                                     std::string(code_name) +
                                     "' in failpoint error action");
    }
    spec->code = *code;
    if (comma != std::string_view::npos) {
      spec->message = std::string(args.substr(comma + 1));
    }
    return Status::OK();
  }
  return Status::InvalidArgument(
      "unknown failpoint action '" + std::string(call.name) +
      "' (expected off|error(code)|delay(ms)|partial)");
}

/// Decides whether the armed spec fires on this evaluation and applies the
/// bookkeeping. Runs under the registry mutex.
bool TriggerFires(ActiveSite* site) {
  const uint64_t hit = ++site->hits;  // 1-based
  bool fires = false;
  switch (site->spec.trigger) {
    case FaultTrigger::kAlways:
      fires = true;
      break;
    case FaultTrigger::kOnce:
      fires = hit == 1;
      break;
    case FaultTrigger::kEveryN:
      fires = hit % site->spec.n == 0;
      break;
    case FaultTrigger::kAfterN:
      fires = hit > site->spec.n;
      break;
    case FaultTrigger::kProb: {
      // One SplitMix64 step per evaluation: deterministic for a fixed
      // seed, independent of every other site's stream.
      site->prng = SplitMix64(site->prng);
      const double u =
          static_cast<double>(site->prng >> 11) * 0x1.0p-53;  // [0,1)
      fires = u < site->spec.prob;
      break;
    }
  }
  if (fires) ++site->fires;
  return fires;
}

Status InjectedError(std::string_view site, const FailSpec& spec) {
  std::string message =
      spec.message.empty()
          ? "injected fault at failpoint '" + std::string(site) + "'"
          : spec.message;
  switch (spec.code) {
    case StatusCode::kOk:
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
  }
  return Status::Internal(std::move(message));
}

}  // namespace

std::string FailSpec::ToString() const {
  std::string out;
  switch (trigger) {
    case FaultTrigger::kAlways:
      break;
    case FaultTrigger::kOnce:
      out += "once*";
      break;
    case FaultTrigger::kEveryN:
      out += "every(" + std::to_string(n) + ")*";
      break;
    case FaultTrigger::kAfterN:
      out += "after(" + std::to_string(n) + ")*";
      break;
    case FaultTrigger::kProb:
      out += "p(" + FormatDouble(prob) + "," + std::to_string(seed) + ")*";
      break;
  }
  switch (kind) {
    case FaultKind::kOff:
      out += "off";
      break;
    case FaultKind::kError:
      out += "error(" + std::string(StatusCodeToString(code));
      if (!message.empty()) out += "," + message;
      out += ")";
      break;
    case FaultKind::kDelay:
      out += "delay(" + std::to_string(delay_ms) + ")";
      break;
    case FaultKind::kPartial:
      out += "partial";
      break;
  }
  return out;
}

Result<FailSpec> ParseSpec(std::string_view text) {
  FailSpec spec;
  if (text.empty()) {
    return Status::InvalidArgument("empty failpoint spec");
  }
  // The '*' separating trigger from action is never inside parentheses in
  // this grammar, so the first top-level '*' splits the two terms.
  size_t depth = 0;
  size_t star = std::string_view::npos;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && depth > 0) --depth;
    if (text[i] == '*' && depth == 0) {
      star = i;
      break;
    }
  }
  if (star != std::string_view::npos) {
    AQUA_RETURN_NOT_OK(ParseTrigger(text.substr(0, star), &spec));
    AQUA_RETURN_NOT_OK(ParseAction(text.substr(star + 1), &spec));
  } else {
    AQUA_RETURN_NOT_OK(ParseAction(text, &spec));
  }
  return spec;
}

const std::vector<SiteInfo>& AllSites() {
  static const std::vector<SiteInfo>* sites = new std::vector<SiteInfo>{
      {"storage/csv/read-file",
       "reading a CSV file from disk, inside the retry loop; a transient "
       "error here exercises retry-then-succeed / retry-exhausted"},
      {"storage/csv/parse",
       "parsing CSV text into a table (after the file was read)"},
      {"storage/csv/write-file", "writing a table to a CSV file, inside "
                                 "the retry loop"},
      {"mapping/serialize/read-file",
       "reading a p-mapping text file from disk, inside the retry loop"},
      {"mapping/serialize/parse", "parsing p-mapping text into blocks"},
      {"mapping/serialize/write-file",
       "writing a p-mapping text file, inside the retry loop"},
      {"exec/pool/spawn",
       "enqueueing a task on the shared thread pool; an error simulates "
       "worker-spawn failure and drives the parallel-to-serial fallback "
       "(the region runs inline on the calling thread)"},
      {"exec/pool/run",
       "a pool worker about to run a dequeued task; delay specs model a "
       "slow/oversubscribed worker for deadline testing",
       /*honors_error=*/false},
      {"exec/parallel/chunk",
       "a parallel-region chunk about to execute; an error exercises "
       "sibling cancellation via the region's linked token"},
      {"common/exec_context/check",
       "ExecContext::CheckNow, the amortised deadline/cancellation poll; "
       "error(deadline-exceeded) deterministically expires any governed "
       "computation mid-flight"},
      {"core/engine/exact",
       "the engine's exact by-tuple pass; error(resource-exhausted) "
       "deterministically drives the exact-to-sampler degradation edge"},
      {"core/engine/degrade",
       "the engine's degraded sampling pass; an error here proves the "
       "ladder ends in a clean Status when even the fallback fails"},
      {"core/sampler/run", "the Monte-Carlo sampler entry point"},
      {"server/accept",
       "the service accept loop, after a client connection is taken off "
       "the listening socket; an error drops that connection (the client "
       "sees a reset, the server keeps serving)"},
      {"server/read-request",
       "reading an HTTP request off an accepted connection; an error "
       "models a client that stalled or hung up mid-request"},
      {"server/admission",
       "the admission decision for a parsed query request; "
       "error(resource-exhausted) deterministically drives the load-shed "
       "path (degrade-to-sampling below the hard watermark, 429 above)"},
      {"server/write-response",
       "writing an HTTP response back to the client; an error models a "
       "connection dropped mid-response (the answer is lost in transit, "
       "never corrupted)"},
      {"shard/spawn",
       "the coordinator submitting a shard's primary attempt to the pool; "
       "an error drives the inline spawn-fallback path (byte-identical "
       "results, counted in aqua_shard_spawn_fallback_total)"},
      {"shard/run",
       "a shard attempt about to run its job; error models shard death "
       "(degrades that shard to sampling), delay models a straggler "
       "(drives hedged re-execution), partial tears the shard's scan "
       "(caught by the rows_covered coverage check)"},
      {"shard/merge",
       "the coordinator about to merge committed shard partials; an error "
       "proves a merge-stage failure surfaces as a clean Status, never a "
       "half-merged answer"},
      {"shard/hedge",
       "the coordinator submitting a hedge (duplicate) attempt for a "
       "straggling shard; an error sheds the hedge (counted in "
       "aqua_shard_hedge_shed_total) while the primary keeps running"},
  };
  return *sites;
}

bool IsKnownSite(std::string_view name) {
  const std::vector<SiteInfo>& sites = AllSites();
  return std::any_of(sites.begin(), sites.end(),
                     [&](const SiteInfo& s) { return s.name == name; });
}

bool Armed() { return g_armed_sites.load(std::memory_order_relaxed) > 0; }

Status Enable(std::string_view site, std::string_view spec) {
  AQUA_ASSIGN_OR_RETURN(FailSpec parsed, ParseSpec(spec));
  return Enable(site, parsed);
}

Status Enable(std::string_view site, const FailSpec& spec) {
  if (!IsKnownSite(site)) {
    return Status::NotFound("unknown failpoint site '" + std::string(site) +
                            "'; see aqua::fault::AllSites()");
  }
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& registry = Registry();
  auto [it, inserted] = registry.try_emplace(std::string(site));
  it->second = ActiveSite{};
  it->second.spec = spec;
  // A default p(...) seed still yields a deterministic stream; mix the
  // site name in so two sites armed with the same default differ.
  uint64_t seed = spec.seed != 0 ? spec.seed : 0x5EEDF417ULL;
  for (const char c : site) seed = seed * 31 + static_cast<unsigned char>(c);
  it->second.prng = seed;
  if (inserted) g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void Disable(std::string_view site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  if (Registry().erase(std::string(site)) > 0) {
    g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisableAll() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  g_armed_sites.fetch_sub(static_cast<int>(Registry().size()),
                          std::memory_order_relaxed);
  Registry().clear();
}

Status ConfigureFromString(std::string_view config) {
  for (std::string_view item : Split(config, ';')) {
    for (std::string_view line : Split(item, '\n')) {
      line = Trim(line);
      if (line.empty()) continue;
      const size_t eq = line.find('=');
      if (eq == std::string_view::npos) {
        return Status::InvalidArgument(
            "failpoint config item '" + std::string(line) +
            "' is not site=spec");
      }
      AQUA_RETURN_NOT_OK(
          Enable(Trim(line.substr(0, eq)), Trim(line.substr(eq + 1))));
    }
  }
  return Status::OK();
}

Status ConfigureFromEnv() {
  const char* env = std::getenv("AQUA_FAILPOINTS");
  if (env == nullptr || *env == '\0') return Status::OK();
  return ConfigureFromString(env);
}

Status Evaluate(std::string_view site) {
  FailSpec fired;
  bool fires = false;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    auto it = Registry().find(std::string(site));
    if (it == Registry().end()) return Status::OK();
    fires = TriggerFires(&it->second);
    if (fires) fired = it->second.spec;
  }
  if (!fires) return Status::OK();
  switch (fired.kind) {
    case FaultKind::kOff:
    case FaultKind::kPartial:  // polled via InjectPartial, never an error
      return Status::OK();
    case FaultKind::kDelay:
      // Sleep outside the registry lock so a delayed site never stalls
      // other sites' evaluations.
      std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
      return Status::OK();
    case FaultKind::kError:
      return InjectedError(site, fired);
  }
  return Status::OK();
}

bool InjectPartial(std::string_view site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(std::string(site));
  if (it == Registry().end()) return false;
  if (it->second.spec.kind != FaultKind::kPartial) return false;
  return TriggerFires(&it->second);
}

SiteStats StatsFor(std::string_view site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(std::string(site));
  if (it == Registry().end()) return SiteStats{};
  return SiteStats{it->second.hits, it->second.fires};
}

}  // namespace aqua::fault
