#ifndef AQUA_COMMON_STATUS_H_
#define AQUA_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace aqua {

/// Machine-readable category of a `Status`.
///
/// The set is intentionally small: the library reports *why* an operation
/// failed only at the granularity a caller can act on. Detailed context goes
/// into the status message.
enum class StatusCode {
  kOk = 0,
  /// The caller passed an argument that violates the API contract
  /// (e.g., probabilities that do not sum to one).
  kInvalidArgument,
  /// A named entity (attribute, relation, mapping) does not exist.
  kNotFound,
  /// An index or size exceeds a structural bound.
  kOutOfRange,
  /// The requested operation exists in the problem space but has no
  /// implementation (e.g., a semantics combination with no known PTIME
  /// algorithm when exact algorithms were explicitly requested).
  kUnimplemented,
  /// The operation was refused because its cost would exceed a caller
  /// supplied budget (naive enumeration guards, step/memory budgets).
  kResourceExhausted,
  /// Invariant violation inside the library; always a bug.
  kInternal,
  /// The wall-clock deadline attached to the request expired before the
  /// operation completed.
  kDeadlineExceeded,
  /// The caller cooperatively cancelled the request mid-flight.
  kCancelled,
  /// A transient failure (I/O hiccup, pool spawn failure, injected fault):
  /// the operation did not happen but retrying it may succeed. This is the
  /// only code `aqua::fault::IsTransient` classifies as retryable.
  kUnavailable,
};

/// Returns the canonical lowercase name of `code` (e.g. "invalid-argument").
std::string_view StatusCodeToString(StatusCode code);

/// Inverse of `StatusCodeToString`: resolves a canonical name back to its
/// code; `std::nullopt` when the name matches no code. (`std::optional`
/// rather than `Result<StatusCode>` because `Result` layers on top of this
/// header.)
std::optional<StatusCode> StatusCodeFromString(std::string_view name);

/// Result of an operation that can fail, in the RocksDB/Arrow style.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// code plus a human-readable message otherwise. Library functions never
/// throw; every fallible public API returns `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory for an OK status; reads better than `Status()` at call sites.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// Human-readable failure context; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Two statuses are equal iff code and message both match. Mostly useful
  /// in tests.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK `Status` out of the enclosing function.
#define AQUA_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::aqua::Status _aqua_status = (expr);        \
    if (!_aqua_status.ok()) return _aqua_status; \
  } while (false)

}  // namespace aqua

#endif  // AQUA_COMMON_STATUS_H_
