#ifndef AQUA_COMMON_STRING_UTIL_H_
#define AQUA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace aqua {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> Split(std::string_view text, char sep);

/// Returns `text` without leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// Case-insensitive ASCII equality (for SQL keywords and attribute names).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style float formatting with %.6g, as used in traces and benches.
std::string FormatDouble(double v);

}  // namespace aqua

#endif  // AQUA_COMMON_STRING_UTIL_H_
