#include "aqua/common/status.h"

namespace aqua {
namespace {

// Every code, in enum order. The switch in StatusCodeToString (not a
// table) is what keeps the mapping -Wswitch-checked; this list only feeds
// the reverse lookup and the round-trip test.
constexpr StatusCode kAllCodes[] = {
    StatusCode::kOk,
    StatusCode::kInvalidArgument,
    StatusCode::kNotFound,
    StatusCode::kOutOfRange,
    StatusCode::kUnimplemented,
    StatusCode::kResourceExhausted,
    StatusCode::kInternal,
    StatusCode::kDeadlineExceeded,
    StatusCode::kCancelled,
    StatusCode::kUnavailable,
};

}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  // No default case on purpose: adding a StatusCode without a name must
  // fail to compile cleanly under -Wswitch (-Wall).
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::optional<StatusCode> StatusCodeFromString(std::string_view name) {
  for (StatusCode code : kAllCodes) {
    if (StatusCodeToString(code) == name) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out.append(": ");
  out.append(message_);
  return out;
}

}  // namespace aqua
