#include "aqua/common/status.h"

namespace aqua {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out.append(": ");
  out.append(message_);
  return out;
}

}  // namespace aqua
