#ifndef AQUA_COMMON_VALUE_H_
#define AQUA_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "aqua/common/date.h"
#include "aqua/common/result.h"

namespace aqua {

/// Runtime type tag of a `Value` / table column.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
  kDate,
};

/// Returns the lowercase name of `type` ("int64", "double", ...).
std::string_view ValueTypeToString(ValueType type);

/// True if values of `type` can participate in numeric aggregation
/// (SUM/AVG) — int64 and double.
bool IsNumeric(ValueType type);

/// A dynamically typed scalar: SQL NULL, 64-bit integer, double, string, or
/// calendar date.
///
/// `Value` is the exchange type at API boundaries (literals, query results,
/// row access). Bulk storage uses typed columns (`storage::Table`), so hot
/// loops never touch `Value`.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Data(v)); }
  static Value Double(double v) { return Value(Data(v)); }
  static Value String(std::string v) { return Value(Data(std::move(v))); }
  static Value FromDate(Date d) { return Value(Data(d)); }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; must only be called when `type()` matches.
  int64_t int64() const { return std::get<int64_t>(data_); }
  double dbl() const { return std::get<double>(data_); }
  const std::string& str() const { return std::get<std::string>(data_); }
  Date date() const { return std::get<Date>(data_); }

  /// Numeric view of this value: int64 widens, double passes through, a
  /// date converts to its day count. Strings and NULL fail.
  Result<double> ToDouble() const;

  /// Three-way comparison with SQL-ish coercion: int64 and double compare
  /// numerically; dates compare to dates; strings compare lexicographically
  /// to strings. Any comparison involving NULL, or across incompatible
  /// types (e.g. string vs. int), fails with `kInvalidArgument`.
  ///
  /// Returns -1, 0 or +1.
  static Result<int> Compare(const Value& a, const Value& b);

  /// Renders the value for display: NULL, 42, 3.5, 'text', 2008-01-30.
  std::string ToString() const;

  /// Exact equality: same type (modulo nothing — int64(1) != double(1.0))
  /// and same payload. Use `Compare` for SQL comparison semantics.
  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }

 private:
  using Data = std::variant<std::monostate, int64_t, double, std::string, Date>;

  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

}  // namespace aqua

#endif  // AQUA_COMMON_VALUE_H_
