#include "aqua/common/exec_context.h"

#include <string>

namespace aqua {

ExecContext::ExecContext(const ExecLimits& limits, CancellationToken cancel)
    : limits_(limits),
      max_steps_(limits.max_steps),
      max_bytes_(limits.max_bytes),
      cancel_(std::move(cancel)) {
  if (limits.timeout_ms > 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits.timeout_ms);
    has_deadline_ = true;
  }
}

Status ExecContext::ChargeBytes(uint64_t bytes) {
  bytes_ += bytes;
  if (max_bytes_ != 0 && bytes_ > max_bytes_) {
    return Status::ResourceExhausted(
        "memory budget exhausted: needs " + std::to_string(bytes_) +
        " bytes of transient state, over the budget of " +
        std::to_string(max_bytes_));
  }
  return Status::OK();
}

Status ExecContext::CheckNow() {
  if (cancel_.cancellation_requested()) {
    return Status::Cancelled("execution cancelled by caller after " +
                             std::to_string(steps_) + " steps");
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Status::DeadlineExceeded(
        "deadline of " + std::to_string(limits_.timeout_ms) +
        " ms exceeded after " + std::to_string(steps_) + " steps");
  }
  return Status::OK();
}

std::chrono::milliseconds ExecContext::RemainingTime() const {
  if (!has_deadline_) return std::chrono::milliseconds::max();
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline_ - std::chrono::steady_clock::now());
  return left.count() < 0 ? std::chrono::milliseconds(0) : left;
}

Status ExecContext::StepExhausted() const {
  return Status::ResourceExhausted(
      "step budget exhausted: " + std::to_string(steps_) +
      " steps charged, over the budget of " + std::to_string(max_steps_));
}

}  // namespace aqua
