#include "aqua/common/exec_context.h"

#include <string>

#include "aqua/common/check.h"
#include "aqua/common/failpoint.h"

namespace aqua {

ExecContext::ExecContext(const ExecLimits& limits, CancellationToken cancel)
    : limits_(limits),
      limit_steps_(limits.max_steps != 0),
      limit_bytes_(limits.max_bytes != 0),
      max_steps_(limits.max_steps),
      max_bytes_(limits.max_bytes),
      cancel_(std::move(cancel)) {
  if (limits.timeout_ms > 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits.timeout_ms);
    has_deadline_ = true;
  }
}

Status ExecContext::ChargeBytes(uint64_t bytes) {
  bytes_ += bytes;
  if (limit_bytes_ && bytes_ > max_bytes_) {
    return Status::ResourceExhausted(
        "memory budget exhausted: needs " + std::to_string(bytes_) +
        " bytes of transient state, over the budget of " +
        std::to_string(max_bytes_));
  }
  return Status::OK();
}

Status ExecContext::CheckNow() {
  // error(deadline-exceeded) here deterministically expires any governed
  // computation at its next poll, whatever the wall clock says.
  AQUA_FAILPOINT("common/exec_context/check");
  if (cancel_.cancellation_requested()) {
    return Status::Cancelled("execution cancelled by caller after " +
                             std::to_string(steps_) + " steps");
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Status::DeadlineExceeded(
        "deadline of " + std::to_string(limits_.timeout_ms) +
        " ms exceeded after " + std::to_string(steps_) + " steps");
  }
  return Status::OK();
}

std::chrono::milliseconds ExecContext::RemainingTime() const {
  if (!has_deadline_) return std::chrono::milliseconds::max();
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline_ - std::chrono::steady_clock::now());
  return left.count() < 0 ? std::chrono::milliseconds(0) : left;
}

Status ExecContext::StepExhausted() const {
  return Status::ResourceExhausted(
      "step budget exhausted: " + std::to_string(steps_) +
      " steps charged, over the budget of " + std::to_string(max_steps_));
}

namespace {

/// shares[i] = floor(remaining * weights[i] / total_weight), with the
/// rounding remainder handed out one unit at a time from share 0 — so the
/// shares always sum to `remaining` exactly and the split is a pure
/// function of (remaining, weights), independent of thread count.
std::vector<uint64_t> SplitExactly(uint64_t remaining,
                                   const std::vector<uint64_t>& weights) {
  std::vector<uint64_t> shares(weights.size(), 0);
  unsigned __int128 total_weight = 0;
  for (const uint64_t w : weights) total_weight += w;
  uint64_t assigned = 0;
  if (total_weight == 0) {
    const uint64_t even = remaining / weights.size();
    for (auto& s : shares) s = even;
    assigned = even * weights.size();
  } else {
    for (size_t i = 0; i < weights.size(); ++i) {
      shares[i] = static_cast<uint64_t>(
          static_cast<unsigned __int128>(remaining) * weights[i] /
          total_weight);
      assigned += shares[i];
    }
  }
  for (size_t i = 0; assigned < remaining; i = (i + 1) % shares.size()) {
    ++shares[i];
    ++assigned;
  }
  // The parallel runtime's accounting (Child/Absorb) rests on the shares
  // summing to the remaining budget *exactly* — no unit lost to rounding,
  // none invented.
  if (!shares.empty()) {
    uint64_t total = 0;
    for (const uint64_t s : shares) total += s;
    AQUA_DCHECK(total == remaining)
        << "budget split leaks: shares sum to " << total << ", remaining is "
        << remaining;
  }
  return shares;
}

}  // namespace

std::vector<BudgetShare> ExecContext::SplitRemaining(
    const std::vector<uint64_t>& weights) const {
  std::vector<BudgetShare> shares(weights.size());
  if (weights.empty()) return shares;
  if (limit_steps_) {
    const uint64_t remaining = max_steps_ > steps_ ? max_steps_ - steps_ : 0;
    const std::vector<uint64_t> split = SplitExactly(remaining, weights);
    for (size_t i = 0; i < shares.size(); ++i) {
      shares[i].limited_steps = true;
      shares[i].steps = split[i];
    }
  }
  if (limit_bytes_) {
    const uint64_t remaining = max_bytes_ > bytes_ ? max_bytes_ - bytes_ : 0;
    const std::vector<uint64_t> split = SplitExactly(remaining, weights);
    for (size_t i = 0; i < shares.size(); ++i) {
      shares[i].limited_bytes = true;
      shares[i].bytes = split[i];
    }
  }
  return shares;
}

ExecContext ExecContext::Child(const BudgetShare& share,
                               const CancellationToken& cancel) const {
  ExecContext child;
  child.limits_ = limits_;  // keeps timeout_ms for deadline error messages
  child.limits_.max_steps = share.steps;
  child.limits_.max_bytes = share.bytes;
  child.deadline_ = deadline_;
  child.has_deadline_ = has_deadline_;
  child.limit_steps_ = share.limited_steps;
  child.limit_bytes_ = share.limited_bytes;
  child.max_steps_ = share.steps;
  child.max_bytes_ = share.bytes;
  child.cancel_ = cancel;
  return child;
}

}  // namespace aqua
