#include "aqua/common/date.h"

#include <array>
#include <charconv>
#include <cstdio>

namespace aqua {
namespace {

// Days-from-civil / civil-from-days, after Howard Hinnant's
// chrono-compatible algorithms (public domain).
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

Date::Ymd CivilFromDays(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  return {static_cast<int>(y + (m <= 2)), static_cast<int>(m),
          static_cast<int>(d)};
}

bool IsLeap(int y) { return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0); }

int DaysInMonth(int year, int month) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeap(year)) return 29;
  return kDays[month - 1];
}

// Parses an integer field; returns false on empty or non-numeric input.
bool ParseField(std::string_view text, int* out) {
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

}  // namespace

Result<Date> Date::FromYmd(int year, int month, int day) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range: " +
                                   std::to_string(month));
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range: " + std::to_string(day));
  }
  return Date(static_cast<int32_t>(DaysFromCivil(year, month, day)));
}

Result<Date> Date::Parse(std::string_view text) {
  // Split on '-' or '/'. A leading '-' (negative year) is not supported by
  // either of the accepted formats, so a plain split is safe.
  std::array<std::string_view, 3> parts;
  int n = 0;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '-' || text[i] == '/') {
      if (n == 3) return Status::InvalidArgument("bad date: too many fields");
      parts[n++] = text.substr(start, i - start);
      start = i + 1;
    }
  }
  if (n != 3) {
    return Status::InvalidArgument("bad date '" + std::string(text) +
                                   "': expected 3 fields");
  }
  int a, b, c;
  if (!ParseField(parts[0], &a) || !ParseField(parts[1], &b) ||
      !ParseField(parts[2], &c)) {
    return Status::InvalidArgument("bad date '" + std::string(text) +
                                   "': non-numeric field");
  }
  // "YYYY-MM-DD" when the first field has 4 digits; otherwise the paper's
  // US ordering "M-D-YYYY".
  if (parts[0].size() == 4) return FromYmd(a, b, c);
  if (parts[2].size() == 4) return FromYmd(c, a, b);
  return Status::InvalidArgument("bad date '" + std::string(text) +
                                 "': no 4-digit year field");
}

Date::Ymd Date::ToYmd() const { return CivilFromDays(days_); }

std::string Date::ToString() const {
  const Ymd ymd = ToYmd();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", ymd.year, ymd.month,
                ymd.day);
  return buf;
}

}  // namespace aqua
