#include "aqua/common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace aqua {
namespace {

bool ParanoidDefault() {
  const char* env = std::getenv("AQUA_PARANOID");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') return true;
#if !defined(NDEBUG) || defined(AQUA_PARANOID)
  return true;
#else
  return false;
#endif
}

std::atomic<bool>& ParanoidFlag() {
  static std::atomic<bool> flag(ParanoidDefault());
  return flag;
}

}  // namespace

bool ParanoidChecksEnabled() {
  return ParanoidFlag().load(std::memory_order_relaxed);
}

bool SetParanoidChecks(bool enabled) {
  return ParanoidFlag().exchange(enabled, std::memory_order_relaxed);
}

namespace check_internal {

CheckFailure::CheckFailure(const char* file, int line, const char* condition) {
  stream_ << "AQUA_CHECK failed at " << file << ":" << line << ": "
          << condition << " ";
}

CheckFailure::~CheckFailure() {
  const std::string message = stream_.str();
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace check_internal
}  // namespace aqua
