#include "aqua/common/string_util.h"

#include <cctype>
#include <cstdio>

namespace aqua {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace aqua
