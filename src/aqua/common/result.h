#ifndef AQUA_COMMON_RESULT_H_
#define AQUA_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "aqua/common/check.h"
#include "aqua/common/status.h"

namespace aqua {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value could not be produced (the Arrow `Result<T>` idiom).
///
/// A `Result` constructed from an OK status is a library bug and is remapped
/// to an internal error so that misuse is observable rather than silent.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The failure status, or OK when a value is present.
  Status status() const { return ok() ? Status::OK() : status_; }

  /// The held value. Must only be called when `ok()`; calling it on an
  /// error result aborts with the held status (in Release too — the old
  /// `assert` left this as undefined behaviour in optimised builds).
  const T& value() const& {
    AQUA_CHECK(ok()) << "value() on error result: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    AQUA_CHECK(ok()) << "value() on error result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    AQUA_CHECK(ok()) << "value() on error result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Evaluates `rexpr` (a Result<T>), propagates its status on failure, and
/// otherwise moves the value into `lhs`.
#define AQUA_ASSIGN_OR_RETURN(lhs, rexpr)              \
  AQUA_ASSIGN_OR_RETURN_IMPL_(                         \
      AQUA_RESULT_CONCAT_(_aqua_result, __LINE__), lhs, rexpr)

#define AQUA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define AQUA_RESULT_CONCAT_(a, b) AQUA_RESULT_CONCAT_IMPL_(a, b)
#define AQUA_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace aqua

#endif  // AQUA_COMMON_RESULT_H_
