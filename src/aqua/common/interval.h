#ifndef AQUA_COMMON_INTERVAL_H_
#define AQUA_COMMON_INTERVAL_H_

#include <algorithm>
#include <cstdio>
#include <string>

namespace aqua {

/// A closed numeric interval [low, high]; the answer shape of the paper's
/// *range semantics*.
struct Interval {
  double low = 0.0;
  double high = 0.0;

  /// Interval containing exactly one point.
  static Interval Point(double v) { return {v, v}; }

  /// True iff low <= v <= high.
  bool Contains(double v) const { return low <= v && v <= high; }

  /// True iff `inner` lies entirely within this interval (used to check the
  /// paper's claim that every by-table range is a subset of the by-tuple
  /// range).
  bool Covers(const Interval& inner) const {
    return low <= inner.low && inner.high <= high;
  }

  double width() const { return high - low; }

  /// Smallest interval containing both operands.
  static Interval Hull(const Interval& a, const Interval& b) {
    return {std::min(a.low, b.low), std::max(a.high, b.high)};
  }

  /// "[low, high]" with 6 significant digits.
  std::string ToString() const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%.6g, %.6g]", low, high);
    return buf;
  }

  friend bool operator==(const Interval& a, const Interval& b) = default;
};

}  // namespace aqua

#endif  // AQUA_COMMON_INTERVAL_H_
