#ifndef AQUA_COMMON_RANDOM_H_
#define AQUA_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aqua {

/// One step of the SplitMix64 mix seeded at `x`. Stateless; used to derive
/// independent per-chunk RNG streams from a root seed (the parallel
/// sampler seeds chunk i with `SplitMix64(seed ^ i)`), and internally to
/// expand an `Rng` seed into xoshiro state.
uint64_t SplitMix64(uint64_t x);

/// Deterministic 64-bit pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64.
///
/// Every randomised component in the library (workload generators, the
/// Monte-Carlo sampler, property tests) takes an explicit `Rng` so runs are
/// reproducible from a single seed. Satisfies the essentials of
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64 random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal deviate (Box–Muller).
  double Gaussian();

  /// Draws an index in [0, probs.size()) according to the (normalised)
  /// probability vector `probs`. Linear scan — use `DiscreteSampler` for
  /// repeated draws from the same distribution.
  size_t Categorical(const std::vector<double>& probs);

  /// Returns `k` probabilities that are strictly positive and sum to 1,
  /// drawn by normalising i.i.d. uniforms (the paper's "randomly chosen
  /// probability distribution" over mappings). Requires k >= 1.
  std::vector<double> RandomProbabilities(size_t k);

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace aqua

#endif  // AQUA_COMMON_RANDOM_H_
