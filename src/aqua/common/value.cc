#include "aqua/common/value.h"

#include <cmath>
#include <cstdio>

namespace aqua {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kDate:
      return "date";
  }
  return "unknown";
}

bool IsNumeric(ValueType type) {
  return type == ValueType::kInt64 || type == ValueType::kDouble;
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(int64());
    case ValueType::kDouble:
      return dbl();
    case ValueType::kDate:
      return static_cast<double>(date().days_since_epoch());
    case ValueType::kNull:
      return Status::InvalidArgument("cannot convert NULL to double");
    case ValueType::kString:
      return Status::InvalidArgument("cannot convert string to double");
  }
  return Status::Internal("corrupt Value");
}

namespace {

int Sign(double x) { return x < 0 ? -1 : (x > 0 ? 1 : 0); }

}  // namespace

Result<int> Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return Status::InvalidArgument("comparison with NULL is undefined");
  }
  const ValueType ta = a.type();
  const ValueType tb = b.type();
  if (IsNumeric(ta) && IsNumeric(tb)) {
    if (ta == ValueType::kInt64 && tb == ValueType::kInt64) {
      const int64_t x = a.int64(), y = b.int64();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = ta == ValueType::kInt64 ? static_cast<double>(a.int64())
                                             : a.dbl();
    const double y = tb == ValueType::kInt64 ? static_cast<double>(b.int64())
                                             : b.dbl();
    return Sign(x - y);
  }
  if (ta != tb) {
    return Status::InvalidArgument(
        std::string("cannot compare ") + std::string(ValueTypeToString(ta)) +
        " with " + std::string(ValueTypeToString(tb)));
  }
  switch (ta) {
    case ValueType::kString:
      return a.str().compare(b.str()) < 0 ? -1
             : a.str() == b.str()         ? 0
                                          : 1;
    case ValueType::kDate: {
      const auto x = a.date(), y = b.date();
      return x < y ? -1 : (x == y ? 0 : 1);
    }
    default:
      return Status::Internal("unreachable comparison case");
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(int64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", dbl());
      return buf;
    }
    case ValueType::kString:
      return "'" + str() + "'";
    case ValueType::kDate:
      return date().ToString();
  }
  return "corrupt";
}

}  // namespace aqua
