#ifndef AQUA_COMMON_EXEC_CONTEXT_H_
#define AQUA_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "aqua/common/status.h"

namespace aqua {

/// Per-request resource budget. Zero means "unlimited" for every field, so
/// a default-constructed `ExecLimits` imposes no governance at all and the
/// fast paths stay free of clock reads.
struct ExecLimits {
  /// Wall-clock deadline, measured from `ExecContext` construction.
  int64_t timeout_ms = 0;

  /// Abstract work budget. A "step" is one unit of inner-loop work (one
  /// enumerated sequence, one DP cell, one sample evaluation); algorithms
  /// charge steps as they go, so the bound is proportional to CPU work and
  /// deterministic across machines (unlike the wall clock).
  uint64_t max_steps = 0;

  /// Bound on the transient memory an algorithm may allocate (DP tables,
  /// outcome maps). Charged at allocation sites, not a malloc hook.
  uint64_t max_bytes = 0;

  /// True iff no field imposes a bound.
  bool Unlimited() const {
    return timeout_ms <= 0 && max_steps == 0 && max_bytes == 0;
  }
};

/// Cooperative cancellation handle. Copies share one flag; a
/// default-constructed token has no flag and can never be cancelled, so it
/// is a free "don't care" argument. Thread-safe: one thread may call
/// `RequestCancel` while another polls inside an engine loop.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// Creates a token with live shared state.
  static CancellationToken Make() {
    CancellationToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// Creates a token that fires when either it or `upstream` is cancelled.
  /// The parallel runtime hands each task group a linked token so one
  /// worker's failure (or the caller's original token) stops all siblings,
  /// while cancelling the group never cancels the caller's token.
  static CancellationToken MakeLinked(const CancellationToken& upstream) {
    CancellationToken t = Make();
    if (upstream.flag_ != nullptr || upstream.upstream_ != nullptr) {
      t.upstream_ = std::make_shared<CancellationToken>(upstream);
    }
    return t;
  }

  /// Requests cancellation; no-op on a stateless token. Never propagates
  /// upstream: cancelling a linked token leaves its parent untouched.
  void RequestCancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  /// True iff `RequestCancel` has been called on any copy of this token or
  /// of any token it is linked to.
  bool cancellation_requested() const {
    if (flag_ && flag_->load(std::memory_order_relaxed)) return true;
    return upstream_ != nullptr && upstream_->cancellation_requested();
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
  std::shared_ptr<const CancellationToken> upstream_;
};

/// One share of a split budget: the step/byte slice a child context is
/// allowed to charge. `limited_*` disambiguates "no bound" from "a bound
/// of zero" (a chunk whose share rounded down to nothing must fail its
/// first charge, not run unbounded).
struct BudgetShare {
  uint64_t steps = 0;
  uint64_t bytes = 0;
  bool limited_steps = false;
  bool limited_bytes = false;
};

/// Mutable per-request execution state: the deadline (fixed at
/// construction), the cancellation token, and running step/byte counters.
///
/// Algorithms receive an `ExecContext*` (null = ungoverned) and call
/// `Charge` from their hot loops. `Charge` is cheap: counters are plain
/// integers and the clock/cancel flag are only consulted every
/// `kCheckInterval` steps, so even the naive enumerator's per-sequence
/// charge costs a couple of instructions on the common path.
class ExecContext {
 public:
  /// An ungoverned context: never expires, never cancels.
  ExecContext() = default;

  explicit ExecContext(const ExecLimits& limits,
                       CancellationToken cancel = CancellationToken());

  /// How often `Charge` consults the wall clock and the cancel flag.
  static constexpr uint64_t kCheckInterval = 4096;

  /// Records `steps` units of work. Fails with kResourceExhausted when the
  /// step budget is spent, kDeadlineExceeded past the deadline, or
  /// kCancelled once cancellation was requested. The deadline/cancel checks
  /// are amortised; the step bound is exact.
  Status Charge(uint64_t steps = 1) {
    steps_ += steps;
    if (limit_steps_ && steps_ > max_steps_) {
      return StepExhausted();
    }
    since_check_ += steps;
    if (since_check_ >= kCheckInterval) {
      since_check_ = 0;
      return CheckNow();
    }
    return Status::OK();
  }

  /// Records a transient allocation of `bytes`. Checked immediately —
  /// allocation sites are rare and each one can be large.
  Status ChargeBytes(uint64_t bytes);

  /// Unconditional deadline + cancellation check (no amortisation). Call
  /// at phase boundaries where a stale verdict would start a long phase.
  Status CheckNow();

  /// Time left until the deadline; zero when already past it. Unbounded
  /// contexts report a very large value.
  std::chrono::milliseconds RemainingTime() const;

  bool has_deadline() const { return has_deadline_; }
  uint64_t steps() const { return steps_; }
  uint64_t bytes() const { return bytes_; }
  const ExecLimits& limits() const { return limits_; }
  const CancellationToken& cancel_token() const { return cancel_; }

  /// Splits the budget still unspent here into `weights.size()` shares
  /// proportional to `weights`, distributing rounding remainders to the
  /// lowest-index shares so the shares sum to the remaining total
  /// *exactly* — the invariant the parallel runtime's accounting rests on.
  /// Unbounded dimensions stay unbounded in every share. All-zero weights
  /// split evenly.
  std::vector<BudgetShare> SplitRemaining(
      const std::vector<uint64_t>& weights) const;

  /// A child context charging against `share`, sharing this context's
  /// *absolute* deadline (not a fresh timeout window) and observing
  /// `cancel` — typically a token linked to this context's own (see
  /// CancellationToken::MakeLinked). Children are independent values, so
  /// concurrent workers charge without synchronisation; the parent calls
  /// `Absorb` at the join to fold their counters back in.
  ExecContext Child(const BudgetShare& share,
                    const CancellationToken& cancel) const;

  /// Adds a joined child's charges to this context's counters. No limit
  /// re-check: the child's share was carved out of this context's
  /// remaining budget, so a child that stayed within its share cannot push
  /// the parent over (a failed child may overshoot by its final charge,
  /// but its failure aborts the parallel region anyway).
  void Absorb(const ExecContext& child) {
    steps_ += child.steps_;
    bytes_ += child.bytes_;
  }

 private:
  Status StepExhausted() const;

  ExecLimits limits_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  bool limit_steps_ = false;
  bool limit_bytes_ = false;
  uint64_t max_steps_ = 0;
  uint64_t max_bytes_ = 0;
  uint64_t steps_ = 0;
  uint64_t bytes_ = 0;
  uint64_t since_check_ = 0;
  CancellationToken cancel_;
};

/// Null-tolerant wrappers: every governed algorithm takes `ExecContext*`
/// with null meaning "no budget", and these keep the call sites branchless
/// to read.
inline Status ExecCharge(ExecContext* ctx, uint64_t steps = 1) {
  return ctx == nullptr ? Status::OK() : ctx->Charge(steps);
}
inline Status ExecChargeBytes(ExecContext* ctx, uint64_t bytes) {
  return ctx == nullptr ? Status::OK() : ctx->ChargeBytes(bytes);
}
inline Status ExecCheckNow(ExecContext* ctx) {
  return ctx == nullptr ? Status::OK() : ctx->CheckNow();
}

}  // namespace aqua

#endif  // AQUA_COMMON_EXEC_CONTEXT_H_
