#ifndef AQUA_COMMON_EXEC_CONTEXT_H_
#define AQUA_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "aqua/common/status.h"

namespace aqua {

/// Per-request resource budget. Zero means "unlimited" for every field, so
/// a default-constructed `ExecLimits` imposes no governance at all and the
/// fast paths stay free of clock reads.
struct ExecLimits {
  /// Wall-clock deadline, measured from `ExecContext` construction.
  int64_t timeout_ms = 0;

  /// Abstract work budget. A "step" is one unit of inner-loop work (one
  /// enumerated sequence, one DP cell, one sample evaluation); algorithms
  /// charge steps as they go, so the bound is proportional to CPU work and
  /// deterministic across machines (unlike the wall clock).
  uint64_t max_steps = 0;

  /// Bound on the transient memory an algorithm may allocate (DP tables,
  /// outcome maps). Charged at allocation sites, not a malloc hook.
  uint64_t max_bytes = 0;

  /// True iff no field imposes a bound.
  bool Unlimited() const {
    return timeout_ms <= 0 && max_steps == 0 && max_bytes == 0;
  }
};

/// Cooperative cancellation handle. Copies share one flag; a
/// default-constructed token has no flag and can never be cancelled, so it
/// is a free "don't care" argument. Thread-safe: one thread may call
/// `RequestCancel` while another polls inside an engine loop.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// Creates a token with live shared state.
  static CancellationToken Make() {
    CancellationToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// Requests cancellation; no-op on a stateless token.
  void RequestCancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  /// True iff `RequestCancel` has been called on any copy.
  bool cancellation_requested() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Mutable per-request execution state: the deadline (fixed at
/// construction), the cancellation token, and running step/byte counters.
///
/// Algorithms receive an `ExecContext*` (null = ungoverned) and call
/// `Charge` from their hot loops. `Charge` is cheap: counters are plain
/// integers and the clock/cancel flag are only consulted every
/// `kCheckInterval` steps, so even the naive enumerator's per-sequence
/// charge costs a couple of instructions on the common path.
class ExecContext {
 public:
  /// An ungoverned context: never expires, never cancels.
  ExecContext() = default;

  explicit ExecContext(const ExecLimits& limits,
                       CancellationToken cancel = CancellationToken());

  /// How often `Charge` consults the wall clock and the cancel flag.
  static constexpr uint64_t kCheckInterval = 4096;

  /// Records `steps` units of work. Fails with kResourceExhausted when the
  /// step budget is spent, kDeadlineExceeded past the deadline, or
  /// kCancelled once cancellation was requested. The deadline/cancel checks
  /// are amortised; the step bound is exact.
  Status Charge(uint64_t steps = 1) {
    steps_ += steps;
    if (max_steps_ != 0 && steps_ > max_steps_) {
      return StepExhausted();
    }
    since_check_ += steps;
    if (since_check_ >= kCheckInterval) {
      since_check_ = 0;
      return CheckNow();
    }
    return Status::OK();
  }

  /// Records a transient allocation of `bytes`. Checked immediately —
  /// allocation sites are rare and each one can be large.
  Status ChargeBytes(uint64_t bytes);

  /// Unconditional deadline + cancellation check (no amortisation). Call
  /// at phase boundaries where a stale verdict would start a long phase.
  Status CheckNow();

  /// Time left until the deadline; zero when already past it. Unbounded
  /// contexts report a very large value.
  std::chrono::milliseconds RemainingTime() const;

  bool has_deadline() const { return has_deadline_; }
  uint64_t steps() const { return steps_; }
  uint64_t bytes() const { return bytes_; }
  const ExecLimits& limits() const { return limits_; }

 private:
  Status StepExhausted() const;

  ExecLimits limits_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  uint64_t max_steps_ = 0;
  uint64_t max_bytes_ = 0;
  uint64_t steps_ = 0;
  uint64_t bytes_ = 0;
  uint64_t since_check_ = 0;
  CancellationToken cancel_;
};

/// Null-tolerant wrappers: every governed algorithm takes `ExecContext*`
/// with null meaning "no budget", and these keep the call sites branchless
/// to read.
inline Status ExecCharge(ExecContext* ctx, uint64_t steps = 1) {
  return ctx == nullptr ? Status::OK() : ctx->Charge(steps);
}
inline Status ExecChargeBytes(ExecContext* ctx, uint64_t bytes) {
  return ctx == nullptr ? Status::OK() : ctx->ChargeBytes(bytes);
}
inline Status ExecCheckNow(ExecContext* ctx) {
  return ctx == nullptr ? Status::OK() : ctx->CheckNow();
}

}  // namespace aqua

#endif  // AQUA_COMMON_EXEC_CONTEXT_H_
