#ifndef AQUA_QUERY_AST_H_
#define AQUA_QUERY_AST_H_

#include <optional>
#include <string>

#include "aqua/expr/predicate.h"

namespace aqua {

/// The five aggregate operators studied in the paper.
enum class AggregateFunction { kCount, kSum, kAvg, kMin, kMax };

/// SQL name of `func` ("COUNT", "SUM", ...).
std::string_view AggregateFunctionToString(AggregateFunction func);

/// A HAVING filter on grouped queries: keep groups whose value of
/// `func([DISTINCT] attribute)` compares to `literal` under `op`, e.g.
/// `HAVING COUNT(*) > 5`. The HAVING aggregate may differ from the
/// SELECT aggregate.
struct HavingClause {
  AggregateFunction func = AggregateFunction::kCount;
  std::string attribute;  // empty for COUNT(*)
  bool distinct = false;
  CompareOp op = CompareOp::kGt;
  Value literal;

  std::string ToString() const;
};

/// A single-table aggregate query:
///
///   SELECT Agg([DISTINCT] A | *) FROM T [WHERE C] [GROUP BY B]
///
/// This is the query class of the paper (§II: aggregates over a single
/// table, or over the result of an SPJ query on the certain part of the
/// schema). Attribute names refer to the *target* (mediated) schema; the
/// reformulator rewrites them to source-schema names per mapping.
struct AggregateQuery {
  AggregateFunction func = AggregateFunction::kCount;

  /// Aggregated attribute; empty means COUNT(*). Only COUNT may leave it
  /// empty.
  std::string attribute;

  /// DISTINCT inside the aggregate (the paper's Q2 uses MAX(DISTINCT ...)).
  bool distinct = false;

  /// Relation named in FROM.
  std::string relation;

  /// Selection condition; `Predicate::True()` when absent. Never null once
  /// validated.
  PredicatePtr where;

  /// GROUP BY attribute; empty when ungrouped.
  std::string group_by;

  /// Optional HAVING filter; only valid on grouped queries. Supported by
  /// the deterministic executor and the by-table semantics (each candidate
  /// mapping filters its own groups); under by-tuple semantics group
  /// membership itself becomes probabilistic and the engine reports
  /// kUnimplemented.
  std::optional<HavingClause> having;

  /// Checks structural validity: non-empty relation, an attribute unless
  /// COUNT(*), a non-null predicate.
  Status Validate() const;

  /// Round-trippable SQL rendering.
  std::string ToString() const;
};

/// The paper's nested form (its query Q2):
///
///   SELECT OuterAgg(x) FROM
///     (SELECT InnerAgg([DISTINCT] A) FROM T WHERE C GROUP BY B) AS R
///
/// The inner query must be grouped; the outer aggregate ranges over the
/// per-group inner results.
struct NestedAggregateQuery {
  AggregateFunction outer = AggregateFunction::kAvg;
  AggregateQuery inner;

  Status Validate() const;
  std::string ToString() const;
};

}  // namespace aqua

#endif  // AQUA_QUERY_AST_H_
