#ifndef AQUA_QUERY_PARSER_H_
#define AQUA_QUERY_PARSER_H_

#include <string_view>

#include "aqua/common/result.h"
#include "aqua/query/ast.h"

namespace aqua {

/// A parsed statement: either a flat aggregate query or the paper's
/// two-level nested form.
struct ParsedQuery {
  enum class Kind { kSimple, kNested };
  Kind kind = Kind::kSimple;
  AggregateQuery simple;        // valid when kind == kSimple
  NestedAggregateQuery nested;  // valid when kind == kNested
};

/// Recursive-descent parser for the SQL fragment used throughout the paper:
///
///   SELECT AGG([DISTINCT] attr | *) FROM rel [WHERE cond] [GROUP BY attr]
///   SELECT AGG(attr) FROM ( <grouped aggregate query> ) [AS alias]
///
/// where AGG is COUNT/SUM/AVG/MIN/MAX and `cond` is built from
/// `attr op literal` comparisons (literals: integers, reals, '...'
/// strings, dates as quoted strings) with AND/OR/NOT and parentheses.
/// Identifiers may be qualified (`R2.price`); since every query ranges over
/// a single relation, qualifiers are validated for shape and dropped.
class SqlParser {
 public:
  /// Parses a statement of either form. Trailing semicolons are allowed.
  static Result<ParsedQuery> Parse(std::string_view sql);

  /// Parses and requires the flat form.
  static Result<AggregateQuery> ParseSimple(std::string_view sql);

  /// Parses and requires the nested form.
  static Result<NestedAggregateQuery> ParseNested(std::string_view sql);
};

}  // namespace aqua

#endif  // AQUA_QUERY_PARSER_H_
