#include "aqua/query/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace aqua {

Result<GroupIndex> GroupIndex::Build(const Table& table, size_t column) {
  if (column >= table.num_columns()) {
    return Status::OutOfRange("group column index out of range");
  }
  const Column& col = table.column(column);
  GroupIndex index;
  index.row_groups_.resize(table.num_rows());

  // Type-specialised interning keeps this O(n) with small constants.
  constexpr int32_t kNullGroup = -1;
  int32_t null_group = kNullGroup;
  auto group_for_null = [&]() {
    if (null_group == kNullGroup) {
      null_group = static_cast<int32_t>(index.group_values_.size());
      index.group_values_.push_back(Value::Null());
    }
    return null_group;
  };

  switch (col.type()) {
    case ValueType::kInt64:
    case ValueType::kDate: {
      std::unordered_map<int64_t, int32_t> ids;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        if (col.IsNull(r)) {
          index.row_groups_[r] = group_for_null();
          continue;
        }
        const int64_t key = col.type() == ValueType::kInt64
                                ? col.Int64At(r)
                                : col.DateAt(r).days_since_epoch();
        auto [it, inserted] = ids.try_emplace(key, 0);
        if (inserted) {
          index.group_values_.push_back(col.GetValue(r));
          it->second = static_cast<int32_t>(index.group_values_.size()) - 1;
        }
        index.row_groups_[r] = it->second;
      }
      break;
    }
    case ValueType::kString: {
      std::unordered_map<std::string, int32_t> ids;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        if (col.IsNull(r)) {
          index.row_groups_[r] = group_for_null();
          continue;
        }
        auto [it, inserted] = ids.try_emplace(col.StringAt(r), 0);
        if (inserted) {
          index.group_values_.push_back(col.GetValue(r));
          it->second = static_cast<int32_t>(index.group_values_.size()) - 1;
        }
        index.row_groups_[r] = it->second;
      }
      break;
    }
    case ValueType::kDouble: {
      std::unordered_map<double, int32_t> ids;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        if (col.IsNull(r)) {
          index.row_groups_[r] = group_for_null();
          continue;
        }
        auto [it, inserted] = ids.try_emplace(col.DoubleAt(r), 0);
        if (inserted) {
          index.group_values_.push_back(col.GetValue(r));
          it->second = static_cast<int32_t>(index.group_values_.size()) - 1;
        }
        index.row_groups_[r] = it->second;
      }
      break;
    }
    case ValueType::kNull:
      return Status::Internal("null-typed group column");
  }
  return index;
}

namespace {

/// Streaming accumulator for one aggregate function over doubles.
class Accumulator {
 public:
  explicit Accumulator(AggregateFunction func, bool distinct)
      : func_(func), distinct_(distinct) {}

  void Add(double v) {
    if (distinct_ && !seen_.insert(v).second) return;
    ++count_;
    sum_ += v;
    min_ = count_ == 1 ? v : std::min(min_, v);
    max_ = count_ == 1 ? v : std::max(max_, v);
  }

  /// Counts a row for COUNT(*) (no attribute value involved).
  void AddRow() { ++count_; }

  std::optional<double> Finish() const {
    if (func_ == AggregateFunction::kCount) {
      return static_cast<double>(count_);
    }
    // Deviation from SQL: SUM over an empty qualifying set is 0, not NULL,
    // matching the paper's ByTupleRangeSUM (its Figure 4 returns [0, 0]
    // when nothing satisfies) so that by-table and by-tuple semantics
    // agree on the edge case and Theorem 4 holds without caveats.
    if (func_ == AggregateFunction::kSum) return sum_;
    if (count_ == 0) return std::nullopt;
    switch (func_) {
      case AggregateFunction::kSum:
        return sum_;
      case AggregateFunction::kAvg:
        return sum_ / static_cast<double>(count_);
      case AggregateFunction::kMin:
        return min_;
      case AggregateFunction::kMax:
        return max_;
      case AggregateFunction::kCount:
        break;
    }
    return std::nullopt;
  }

 private:
  AggregateFunction func_;
  bool distinct_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::unordered_set<double> seen_;
};

struct ResolvedQuery {
  BoundPredicate predicate;
  const Column* attribute = nullptr;  // null for COUNT(*)
};

Result<ResolvedQuery> Resolve(const AggregateQuery& q, const Table& table) {
  AQUA_RETURN_NOT_OK(q.Validate());
  ResolvedQuery resolved;
  AQUA_ASSIGN_OR_RETURN(resolved.predicate,
                        BoundPredicate::Bind(q.where, table.schema()));
  if (!q.attribute.empty()) {
    AQUA_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(q.attribute));
    const ValueType type = table.schema().attribute(idx).type;
    const bool needs_numeric = q.func == AggregateFunction::kSum ||
                               q.func == AggregateFunction::kAvg;
    if (needs_numeric && !IsNumeric(type)) {
      return Status::InvalidArgument(
          std::string(AggregateFunctionToString(q.func)) +
          " requires a numeric attribute; '" + q.attribute + "' is " +
          std::string(ValueTypeToString(type)));
    }
    // MIN/MAX/COUNT over strings would need a Value-ordered accumulator;
    // the engine (like the paper) aggregates numeric and date attributes.
    if (type == ValueType::kString) {
      return Status::Unimplemented("aggregation over string attribute '" +
                                   q.attribute + "'");
    }
    resolved.attribute = &table.column(idx);
  }
  return resolved;
}

}  // namespace

Result<std::optional<double>> Executor::ExecuteScalar(const AggregateQuery& q,
                                                      const Table& table) {
  if (!q.group_by.empty()) {
    return Status::InvalidArgument(
        "grouped query passed to ExecuteScalar; use ExecuteGrouped");
  }
  AQUA_ASSIGN_OR_RETURN(ResolvedQuery resolved, Resolve(q, table));
  Accumulator acc(q.func, q.distinct);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!resolved.predicate.Matches(table, r)) continue;
    if (resolved.attribute == nullptr) {
      acc.AddRow();
    } else if (!resolved.attribute->IsNull(r)) {
      acc.Add(resolved.attribute->NumericAt(r));
    }
  }
  return acc.Finish();
}

Result<std::vector<Executor::GroupResult>> Executor::ExecuteGrouped(
    const AggregateQuery& q, const Table& table) {
  if (q.group_by.empty()) {
    return Status::InvalidArgument(
        "ungrouped query passed to ExecuteGrouped; use ExecuteScalar");
  }
  AQUA_ASSIGN_OR_RETURN(ResolvedQuery resolved, Resolve(q, table));
  AQUA_ASSIGN_OR_RETURN(size_t group_col, table.schema().IndexOf(q.group_by));
  AQUA_ASSIGN_OR_RETURN(GroupIndex groups, GroupIndex::Build(table, group_col));

  // Resolve the HAVING aggregate's column, if any.
  const Column* having_attr = nullptr;
  if (q.having.has_value() && !q.having->attribute.empty()) {
    AQUA_ASSIGN_OR_RETURN(size_t idx,
                          table.schema().IndexOf(q.having->attribute));
    const ValueType type = table.schema().attribute(idx).type;
    if (type == ValueType::kString) {
      return Status::Unimplemented(
          "HAVING aggregation over string attribute '" +
          q.having->attribute + "'");
    }
    const bool needs_numeric = q.having->func == AggregateFunction::kSum ||
                               q.having->func == AggregateFunction::kAvg;
    if (needs_numeric && !IsNumeric(type)) {
      return Status::InvalidArgument(
          "HAVING " + std::string(AggregateFunctionToString(q.having->func)) +
          " requires a numeric attribute");
    }
    having_attr = &table.column(idx);
  }

  std::vector<Accumulator> accs(groups.num_groups(),
                                Accumulator(q.func, q.distinct));
  std::vector<Accumulator> having_accs;
  if (q.having.has_value()) {
    having_accs.assign(groups.num_groups(),
                       Accumulator(q.having->func, q.having->distinct));
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!resolved.predicate.Matches(table, r)) continue;
    const int32_t g = groups.row_groups()[r];
    Accumulator& acc = accs[g];
    if (resolved.attribute == nullptr) {
      acc.AddRow();
    } else if (!resolved.attribute->IsNull(r)) {
      acc.Add(resolved.attribute->NumericAt(r));
    }
    if (q.having.has_value()) {
      Accumulator& hacc = having_accs[g];
      if (having_attr == nullptr) {
        hacc.AddRow();
      } else if (!having_attr->IsNull(r)) {
        hacc.Add(having_attr->NumericAt(r));
      }
    }
  }
  std::vector<GroupResult> out;
  out.reserve(groups.num_groups());
  for (size_t g = 0; g < groups.num_groups(); ++g) {
    const std::optional<double> v = accs[g].Finish();
    if (!v.has_value()) continue;
    if (q.having.has_value()) {
      const std::optional<double> hv = having_accs[g].Finish();
      if (!hv.has_value()) continue;  // HAVING aggregate undefined: drop
      AQUA_ASSIGN_OR_RETURN(double lit, q.having->literal.ToDouble());
      AQUA_ASSIGN_OR_RETURN(
          int cmp, Value::Compare(Value::Double(*hv), Value::Double(lit)));
      bool keep = false;
      switch (q.having->op) {
        case CompareOp::kEq:
          keep = cmp == 0;
          break;
        case CompareOp::kNe:
          keep = cmp != 0;
          break;
        case CompareOp::kLt:
          keep = cmp < 0;
          break;
        case CompareOp::kLe:
          keep = cmp <= 0;
          break;
        case CompareOp::kGt:
          keep = cmp > 0;
          break;
        case CompareOp::kGe:
          keep = cmp >= 0;
          break;
      }
      if (!keep) continue;
    }
    out.push_back(GroupResult{groups.group_values()[g], *v});
  }
  return out;
}

Result<std::optional<double>> Executor::ExecuteNested(
    const NestedAggregateQuery& q, const Table& table) {
  AQUA_RETURN_NOT_OK(q.Validate());
  AQUA_ASSIGN_OR_RETURN(std::vector<GroupResult> inner,
                        ExecuteGrouped(q.inner, table));
  std::vector<double> values;
  values.reserve(inner.size());
  for (const GroupResult& g : inner) values.push_back(g.value);
  return Fold(q.outer, values);
}

std::optional<double> Executor::Fold(AggregateFunction func,
                                     const std::vector<double>& values) {
  Accumulator acc(func, /*distinct=*/false);
  for (double v : values) acc.Add(v);
  return acc.Finish();
}

}  // namespace aqua
