#ifndef AQUA_QUERY_VIEW_H_
#define AQUA_QUERY_VIEW_H_

#include <string>
#include <string_view>
#include <vector>

#include "aqua/expr/predicate.h"
#include "aqua/storage/table.h"

namespace aqua {

/// Materialised select-project-join views over the *certain* part of the
/// schema. The paper's setting (§II) allows the aggregated relation to be
/// "a table that is the result of any SPJ query over the non probabilistic
/// part of the schema"; these operators build that table, after which the
/// probabilistic engine runs on it unchanged.
class View {
 public:
  /// Rows of `table` satisfying `predicate` (SQL 3VL: NULL filters out).
  static Result<Table> Select(const Table& table,
                              const PredicatePtr& predicate);

  /// The named columns of `table`, in the given order. Names are matched
  /// case-insensitively; duplicates are rejected.
  static Result<Table> Project(const Table& table,
                               const std::vector<std::string>& columns);

  /// Select followed by Project in one pass.
  static Result<Table> SelectProject(const Table& table,
                                     const PredicatePtr& predicate,
                                     const std::vector<std::string>& columns);

  /// Inner hash equi-join of `left` and `right` on
  /// `left.left_attr = right.right_attr`. Join keys must share a type
  /// (int64/date/string; doubles are rejected as join keys). The output
  /// schema is all left attributes followed by all right attributes;
  /// a right attribute whose name collides with a left one is renamed
  /// with the prefix `right_`. NULL keys never join (SQL semantics).
  static Result<Table> HashJoin(const Table& left, const Table& right,
                                std::string_view left_attr,
                                std::string_view right_attr);
};

}  // namespace aqua

#endif  // AQUA_QUERY_VIEW_H_
