#include "aqua/query/ast.h"

namespace aqua {

std::string_view AggregateFunctionToString(AggregateFunction func) {
  switch (func) {
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kAvg:
      return "AVG";
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
  }
  return "?";
}

std::string HavingClause::ToString() const {
  std::string out(AggregateFunctionToString(func));
  out += "(";
  if (distinct) out += "DISTINCT ";
  out += attribute.empty() ? "*" : attribute;
  out += ") ";
  out += CompareOpToString(op);
  out += " " + literal.ToString();
  return out;
}

Status AggregateQuery::Validate() const {
  if (relation.empty()) {
    return Status::InvalidArgument("query has no FROM relation");
  }
  if (where == nullptr) {
    return Status::InvalidArgument("query has a null WHERE predicate");
  }
  if (attribute.empty() && func != AggregateFunction::kCount) {
    return Status::InvalidArgument(
        std::string(AggregateFunctionToString(func)) +
        "(*) is not a valid aggregate; only COUNT may omit the attribute");
  }
  if (distinct && attribute.empty()) {
    return Status::InvalidArgument("COUNT(DISTINCT *) is not supported");
  }
  if (having.has_value()) {
    if (group_by.empty()) {
      return Status::InvalidArgument("HAVING requires GROUP BY");
    }
    if (having->attribute.empty() &&
        having->func != AggregateFunction::kCount) {
      return Status::InvalidArgument(
          "only COUNT may aggregate '*' in HAVING");
    }
    if (having->literal.is_null()) {
      return Status::InvalidArgument("HAVING comparison with NULL literal");
    }
    if (!IsNumeric(having->literal.type())) {
      return Status::InvalidArgument(
          "HAVING literal must be numeric (aggregates are numeric)");
    }
  }
  return Status::OK();
}

std::string AggregateQuery::ToString() const {
  std::string out = "SELECT ";
  out += AggregateFunctionToString(func);
  out += "(";
  if (distinct) out += "DISTINCT ";
  out += attribute.empty() ? "*" : attribute;
  out += ") FROM ";
  out += relation;
  if (where != nullptr && where->kind() != Predicate::Kind::kTrue) {
    out += " WHERE " + where->ToString();
  }
  if (!group_by.empty()) {
    out += " GROUP BY " + group_by;
  }
  if (having.has_value()) {
    out += " HAVING " + having->ToString();
  }
  return out;
}

Status NestedAggregateQuery::Validate() const {
  AQUA_RETURN_NOT_OK(inner.Validate());
  if (inner.group_by.empty()) {
    return Status::InvalidArgument(
        "the inner query of a nested aggregate must have GROUP BY");
  }
  return Status::OK();
}

std::string NestedAggregateQuery::ToString() const {
  std::string out = "SELECT ";
  out += AggregateFunctionToString(outer);
  out += "(r) FROM (" + inner.ToString() + ") AS r";
  return out;
}

}  // namespace aqua
