#ifndef AQUA_QUERY_EXECUTOR_H_
#define AQUA_QUERY_EXECUTOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "aqua/common/result.h"
#include "aqua/query/ast.h"
#include "aqua/storage/table.h"

namespace aqua {

/// Dense group assignment for a GROUP BY column: every row is labelled with
/// a group id in [0, num_groups). NULL group values form their own group
/// (SQL semantics). Groups are numbered in order of first appearance.
///
/// This index is shared by the deterministic executor and the grouped
/// variants of the by-tuple algorithms (which run one instance of the
/// per-tuple recurrence per group).
class GroupIndex {
 public:
  /// Builds the index over column `column` of `table`.
  static Result<GroupIndex> Build(const Table& table, size_t column);

  size_t num_groups() const { return group_values_.size(); }

  /// Group id of each row.
  const std::vector<int32_t>& row_groups() const { return row_groups_; }

  /// Representative value of each group (index = group id).
  const std::vector<Value>& group_values() const { return group_values_; }

 private:
  std::vector<int32_t> row_groups_;
  std::vector<Value> group_values_;
};

/// Deterministic (certain-schema) aggregate evaluation. This is the
/// substrate that the by-table semantics calls once per candidate mapping —
/// the role PostgreSQL played in the paper's prototype.
///
/// SQL niceties honoured: the aggregate skips NULL attribute values,
/// COUNT(*) counts rows, DISTINCT dedupes values, empty input yields NULL
/// (represented as std::nullopt) for SUM/AVG/MIN/MAX and 0 for COUNT.
class Executor {
 public:
  /// One per-group answer of a grouped aggregate.
  struct GroupResult {
    Value group;
    double value;
  };

  /// Executes an ungrouped query against `table` (which *is* the FROM
  /// relation; relation-name resolution happens a layer above).
  static Result<std::optional<double>> ExecuteScalar(const AggregateQuery& q,
                                                     const Table& table);

  /// Executes a grouped query; results appear in group-first-seen order.
  /// Groups whose aggregate is NULL (all values null) are omitted.
  static Result<std::vector<GroupResult>> ExecuteGrouped(
      const AggregateQuery& q, const Table& table);

  /// Executes the nested form: the inner grouped query, then the outer
  /// aggregate over the per-group values.
  static Result<std::optional<double>> ExecuteNested(
      const NestedAggregateQuery& q, const Table& table);

  /// Folds `func` over `values` with SQL empty-input semantics.
  static std::optional<double> Fold(AggregateFunction func,
                                    const std::vector<double>& values);
};

}  // namespace aqua

#endif  // AQUA_QUERY_EXECUTOR_H_
