#include "aqua/query/view.h"

#include <unordered_map>

#include "aqua/common/string_util.h"

namespace aqua {
namespace {

/// Copies row `row` of `src` onto the end of `dst` (same type).
void CopyCell(const Column& src, size_t row, Column* dst) {
  if (src.IsNull(row)) {
    dst->AppendNull();
    return;
  }
  switch (src.type()) {
    case ValueType::kInt64:
      dst->AppendInt64(src.Int64At(row));
      break;
    case ValueType::kDouble:
      dst->AppendDouble(src.DoubleAt(row));
      break;
    case ValueType::kString:
      dst->AppendString(src.StringAt(row));
      break;
    case ValueType::kDate:
      dst->AppendDate(src.DateAt(row));
      break;
    case ValueType::kNull:
      break;
  }
}

Result<Table> Gather(const Table& table, const std::vector<uint32_t>& rows,
                     const std::vector<size_t>& column_indices,
                     Schema out_schema) {
  std::vector<Column> out;
  out.reserve(column_indices.size());
  for (size_t c : column_indices) {
    out.emplace_back(table.column(c).type());
    out.back().Reserve(rows.size());
  }
  for (uint32_t r : rows) {
    for (size_t i = 0; i < column_indices.size(); ++i) {
      CopyCell(table.column(column_indices[i]), r, &out[i]);
    }
  }
  return Table::Make(std::move(out_schema), std::move(out));
}

std::vector<size_t> AllColumns(const Table& table) {
  std::vector<size_t> idx(table.num_columns());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return idx;
}

}  // namespace

Result<Table> View::Select(const Table& table, const PredicatePtr& predicate) {
  AQUA_ASSIGN_OR_RETURN(BoundPredicate bound,
                        BoundPredicate::Bind(predicate, table.schema()));
  std::vector<uint32_t> rows;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (bound.Matches(table, r)) rows.push_back(static_cast<uint32_t>(r));
  }
  return Gather(table, rows, AllColumns(table), table.schema());
}

Result<Table> View::Project(const Table& table,
                            const std::vector<std::string>& columns) {
  return SelectProject(table, Predicate::True(), columns);
}

Result<Table> View::SelectProject(const Table& table,
                                  const PredicatePtr& predicate,
                                  const std::vector<std::string>& columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("projection needs at least one column");
  }
  AQUA_ASSIGN_OR_RETURN(BoundPredicate bound,
                        BoundPredicate::Bind(predicate, table.schema()));
  std::vector<size_t> indices;
  std::vector<Attribute> attrs;
  for (const std::string& name : columns) {
    AQUA_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(name));
    for (size_t seen : indices) {
      if (seen == idx) {
        return Status::InvalidArgument("duplicate projection column '" +
                                       name + "'");
      }
    }
    indices.push_back(idx);
    attrs.push_back(table.schema().attribute(idx));
  }
  AQUA_ASSIGN_OR_RETURN(Schema out_schema, Schema::Make(std::move(attrs)));
  std::vector<uint32_t> rows;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (bound.Matches(table, r)) rows.push_back(static_cast<uint32_t>(r));
  }
  return Gather(table, rows, indices, std::move(out_schema));
}

Result<Table> View::HashJoin(const Table& left, const Table& right,
                             std::string_view left_attr,
                             std::string_view right_attr) {
  AQUA_ASSIGN_OR_RETURN(size_t lkey, left.schema().IndexOf(left_attr));
  AQUA_ASSIGN_OR_RETURN(size_t rkey, right.schema().IndexOf(right_attr));
  const Column& lcol = left.column(lkey);
  const Column& rcol = right.column(rkey);
  if (lcol.type() != rcol.type()) {
    return Status::InvalidArgument(
        "join keys have different types: " +
        std::string(ValueTypeToString(lcol.type())) + " vs " +
        std::string(ValueTypeToString(rcol.type())));
  }
  if (lcol.type() == ValueType::kDouble) {
    return Status::InvalidArgument(
        "joining on a double column is rejected (exact float equality)");
  }

  // Output schema: left attributes, then right attributes with collisions
  // prefixed.
  std::vector<Attribute> attrs = left.schema().attributes();
  for (const Attribute& a : right.schema().attributes()) {
    Attribute out = a;
    if (left.schema().Contains(out.name)) out.name = "right_" + out.name;
    attrs.push_back(std::move(out));
  }
  AQUA_ASSIGN_OR_RETURN(Schema out_schema, Schema::Make(std::move(attrs)));

  // Build side: hash the right keys.
  auto key_string = [](const Column& col, size_t row) {
    // int64/date collapse to the integer payload; strings pass through.
    switch (col.type()) {
      case ValueType::kInt64:
        return std::to_string(col.Int64At(row));
      case ValueType::kDate:
        return std::to_string(col.DateAt(row).days_since_epoch());
      case ValueType::kString:
        return col.StringAt(row);
      default:
        return std::string();
    }
  };
  std::unordered_map<std::string, std::vector<uint32_t>> build;
  for (size_t r = 0; r < right.num_rows(); ++r) {
    if (rcol.IsNull(r)) continue;
    build[key_string(rcol, r)].push_back(static_cast<uint32_t>(r));
  }

  std::vector<Column> out;
  out.reserve(out_schema.num_attributes());
  for (size_t i = 0; i < out_schema.num_attributes(); ++i) {
    out.emplace_back(out_schema.attribute(i).type);
  }
  // Probe side: emit one output row per (left, right) match.
  for (size_t lr = 0; lr < left.num_rows(); ++lr) {
    if (lcol.IsNull(lr)) continue;
    const auto it = build.find(key_string(lcol, lr));
    if (it == build.end()) continue;
    for (uint32_t rr : it->second) {
      for (size_t c = 0; c < left.num_columns(); ++c) {
        CopyCell(left.column(c), lr, &out[c]);
      }
      for (size_t c = 0; c < right.num_columns(); ++c) {
        CopyCell(right.column(c), rr, &out[left.num_columns() + c]);
      }
    }
  }
  return Table::Make(std::move(out_schema), std::move(out));
}

}  // namespace aqua
