#include "aqua/query/parser.h"

#include <cctype>
#include <charconv>
#include <optional>
#include <string>
#include <vector>

#include "aqua/common/string_util.h"
#include "aqua/obs/trace.h"

namespace aqua {
namespace {

enum class TokenKind {
  kIdent,
  kInt,
  kReal,
  kString,
  kSymbol,  // ( ) , * . ; = <> < <= > >= !=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // raw text (unquoted for strings)
  int64_t int_value = 0;
  double real_value = 0.0;
  size_t offset = 0;    // position in the input, for error messages
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= sql_.size()) break;
      const size_t start = pos_;
      const char c = sql_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        AQUA_ASSIGN_OR_RETURN(Token t, LexNumber());
        out.push_back(std::move(t));
      } else if (c == '\'') {
        AQUA_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
      } else {
        AQUA_ASSIGN_OR_RETURN(Token t, LexSymbol());
        out.push_back(std::move(t));
      }
      if (out.back().offset == 0) out.back().offset = start;
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.offset = sql_.size();
    out.push_back(end);
    return out;
  }

 private:
  void SkipSpace() {
    while (pos_ < sql_.size() &&
           std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
      ++pos_;
    }
  }

  Token LexIdent() {
    Token t;
    t.kind = TokenKind::kIdent;
    t.offset = pos_;
    while (pos_ < sql_.size() &&
           (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
            sql_[pos_] == '_')) {
      t.text += sql_[pos_++];
    }
    return t;
  }

  Result<Token> LexNumber() {
    Token t;
    t.offset = pos_;
    const size_t start = pos_;
    while (pos_ < sql_.size() &&
           (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
            sql_[pos_] == '.' || sql_[pos_] == 'e' || sql_[pos_] == 'E' ||
            ((sql_[pos_] == '+' || sql_[pos_] == '-') && pos_ > start &&
             (sql_[pos_ - 1] == 'e' || sql_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    t.text = std::string(sql_.substr(start, pos_ - start));
    if (t.text.find_first_of(".eE") == std::string::npos) {
      auto [ptr, ec] = std::from_chars(t.text.data(),
                                       t.text.data() + t.text.size(),
                                       t.int_value);
      if (ec != std::errc() || ptr != t.text.data() + t.text.size()) {
        return Status::InvalidArgument("bad integer literal '" + t.text +
                                       "'");
      }
      t.kind = TokenKind::kInt;
    } else {
      try {
        size_t used = 0;
        t.real_value = std::stod(t.text, &used);
        if (used != t.text.size()) {
          return Status::InvalidArgument("bad numeric literal '" + t.text +
                                         "'");
        }
      } catch (...) {
        return Status::InvalidArgument("bad numeric literal '" + t.text +
                                       "'");
      }
      t.kind = TokenKind::kReal;
    }
    return t;
  }

  Result<Token> LexString() {
    Token t;
    t.kind = TokenKind::kString;
    t.offset = pos_;
    ++pos_;  // opening quote
    while (pos_ < sql_.size()) {
      if (sql_[pos_] == '\'') {
        if (pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '\'') {
          t.text += '\'';
          pos_ += 2;
        } else {
          ++pos_;
          return t;
        }
      } else {
        t.text += sql_[pos_++];
      }
    }
    return Status::InvalidArgument("unterminated string literal");
  }

  Result<Token> LexSymbol() {
    Token t;
    t.kind = TokenKind::kSymbol;
    t.offset = pos_;
    const char c = sql_[pos_];
    switch (c) {
      case '(':
      case ')':
      case ',':
      case '*':
      case '.':
      case ';':
      case '=':
      case '-':
        t.text = std::string(1, c);
        ++pos_;
        return t;
      case '<':
        ++pos_;
        if (pos_ < sql_.size() && (sql_[pos_] == '=' || sql_[pos_] == '>')) {
          t.text = std::string("<") + sql_[pos_++];
        } else {
          t.text = "<";
        }
        return t;
      case '>':
        ++pos_;
        if (pos_ < sql_.size() && sql_[pos_] == '=') {
          t.text = ">=";
          ++pos_;
        } else {
          t.text = ">";
        }
        return t;
      case '!':
        ++pos_;
        if (pos_ < sql_.size() && sql_[pos_] == '=') {
          t.text = "!=";
          ++pos_;
          return t;
        }
        return Status::InvalidArgument("stray '!' in query");
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' in query");
    }
  }

  std::string_view sql_;
  size_t pos_ = 0;
};

std::optional<AggregateFunction> AggregateByName(std::string_view name) {
  if (EqualsIgnoreCase(name, "COUNT")) return AggregateFunction::kCount;
  if (EqualsIgnoreCase(name, "SUM")) return AggregateFunction::kSum;
  if (EqualsIgnoreCase(name, "AVG")) return AggregateFunction::kAvg;
  if (EqualsIgnoreCase(name, "MIN")) return AggregateFunction::kMin;
  if (EqualsIgnoreCase(name, "MAX")) return AggregateFunction::kMax;
  return std::nullopt;
}

std::optional<CompareOp> CompareOpBySymbol(std::string_view sym) {
  if (sym == "=") return CompareOp::kEq;
  if (sym == "<>" || sym == "!=") return CompareOp::kNe;
  if (sym == "<") return CompareOp::kLt;
  if (sym == "<=") return CompareOp::kLe;
  if (sym == ">") return CompareOp::kGt;
  if (sym == ">=") return CompareOp::kGe;
  return std::nullopt;
}

CompareOp FlipOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> ParseStatement() {
    AQUA_ASSIGN_OR_RETURN(ParsedQuery q, ParseQuery());
    if (PeekSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after query");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kIdent &&
           EqualsIgnoreCase(Peek().text, kw);
  }
  bool PeekKeyword2(std::string_view kw) const {
    return Peek(1).kind == TokenKind::kIdent &&
           EqualsIgnoreCase(Peek(1).text, kw);
  }
  bool PeekSymbol(std::string_view sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == sym;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " (near offset " +
                                   std::to_string(Peek().offset) + ")");
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) {
      return Error("expected " + std::string(kw));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(std::string_view sym) {
    if (!PeekSymbol(sym)) {
      return Error("expected '" + std::string(sym) + "'");
    }
    Advance();
    return Status::OK();
  }

  /// Guards the self-recursive productions (parenthesised / NOT-chained
  /// predicates, nested FROM). Without a bound, adversarial input such as
  /// "((((..." recurses once per byte and overflows the stack; 200 levels
  /// is far beyond any real query and well within the default stack.
  static constexpr int kMaxDepth = 200;
  Status EnterRecursion() {
    if (depth_ >= kMaxDepth) {
      return Error("query nesting exceeds the maximum depth of " +
                   std::to_string(kMaxDepth));
    }
    ++depth_;
    return Status::OK();
  }
  struct DepthGuard {
    Parser* parser;
    ~DepthGuard() { --parser->depth_; }
  };

  /// Parses `ident` or `ident.ident`, returning the unqualified name.
  Result<std::string> ParseAttributeName() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected attribute name");
    }
    std::string name = Advance().text;
    if (PeekSymbol(".")) {
      Advance();
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected attribute after qualifier '.'");
      }
      name = Advance().text;  // single-relation queries: drop the qualifier
    }
    return name;
  }

  Result<Value> ParseLiteral() {
    bool negate = false;
    if (PeekSymbol("-")) {
      Advance();
      negate = true;
    }
    const Token& t = Peek();
    if (negate && t.kind != TokenKind::kInt && t.kind != TokenKind::kReal) {
      return Error("expected numeric literal after unary '-'");
    }
    switch (t.kind) {
      case TokenKind::kInt: {
        const int64_t v = t.int_value;
        Advance();
        return Value::Int64(negate ? -v : v);
      }
      case TokenKind::kReal: {
        const double v = t.real_value;
        Advance();
        return Value::Double(negate ? -v : v);
      }
      case TokenKind::kString: {
        std::string s = t.text;
        Advance();
        return Value::String(std::move(s));
      }
      default:
        return Error("expected literal");
    }
  }

  bool AtLiteral() const {
    return Peek().kind == TokenKind::kInt || Peek().kind == TokenKind::kReal ||
           Peek().kind == TokenKind::kString || PeekSymbol("-");
  }

  Result<PredicatePtr> ParseComparison() {
    if (AtLiteral()) {
      // literal OP attr — normalise to attr flipped-OP literal.
      AQUA_ASSIGN_OR_RETURN(Value lit, ParseLiteral());
      if (Peek().kind != TokenKind::kSymbol) return Error("expected operator");
      const auto op = CompareOpBySymbol(Peek().text);
      if (!op) return Error("expected comparison operator");
      Advance();
      AQUA_ASSIGN_OR_RETURN(std::string attr, ParseAttributeName());
      return Predicate::Comparison(std::move(attr), FlipOp(*op),
                                   std::move(lit));
    }
    AQUA_ASSIGN_OR_RETURN(std::string attr, ParseAttributeName());
    // Sugar: `attr [NOT] BETWEEN a AND b` and `attr [NOT] IN (v, ...)`.
    bool negated = false;
    if (PeekKeyword("NOT")) {
      if (!PeekKeyword2("BETWEEN") && !PeekKeyword2("IN")) {
        return Error("expected BETWEEN or IN after NOT");
      }
      Advance();
      negated = true;
    }
    if (PeekKeyword("BETWEEN")) {
      Advance();
      AQUA_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
      AQUA_RETURN_NOT_OK(ExpectKeyword("AND"));
      AQUA_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
      PredicatePtr range = Predicate::And(
          Predicate::Comparison(attr, CompareOp::kGe, std::move(lo)),
          Predicate::Comparison(attr, CompareOp::kLe, std::move(hi)));
      return negated ? Predicate::Not(std::move(range)) : range;
    }
    if (PeekKeyword("IN")) {
      Advance();
      AQUA_RETURN_NOT_OK(ExpectSymbol("("));
      PredicatePtr disjunction;
      while (true) {
        AQUA_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        PredicatePtr eq =
            Predicate::Comparison(attr, CompareOp::kEq, std::move(v));
        disjunction = disjunction == nullptr
                          ? std::move(eq)
                          : Predicate::Or(std::move(disjunction),
                                          std::move(eq));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      AQUA_RETURN_NOT_OK(ExpectSymbol(")"));
      return negated ? Predicate::Not(std::move(disjunction)) : disjunction;
    }
    if (negated) return Error("expected BETWEEN or IN after NOT");
    if (Peek().kind != TokenKind::kSymbol) return Error("expected operator");
    const auto op = CompareOpBySymbol(Peek().text);
    if (!op) return Error("expected comparison operator");
    Advance();
    AQUA_ASSIGN_OR_RETURN(Value lit, ParseLiteral());
    return Predicate::Comparison(std::move(attr), *op, std::move(lit));
  }

  Result<PredicatePtr> ParseUnary() {
    AQUA_RETURN_NOT_OK(EnterRecursion());
    DepthGuard guard{this};
    if (PeekKeyword("NOT")) {
      Advance();
      AQUA_ASSIGN_OR_RETURN(PredicatePtr inner, ParseUnary());
      return Predicate::Not(std::move(inner));
    }
    if (PeekSymbol("(")) {
      Advance();
      AQUA_ASSIGN_OR_RETURN(PredicatePtr inner, ParseOr());
      AQUA_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    return ParseComparison();
  }

  Result<PredicatePtr> ParseAnd() {
    AQUA_ASSIGN_OR_RETURN(PredicatePtr left, ParseUnary());
    while (PeekKeyword("AND")) {
      Advance();
      AQUA_ASSIGN_OR_RETURN(PredicatePtr right, ParseUnary());
      left = Predicate::And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<PredicatePtr> ParseOr() {
    AQUA_ASSIGN_OR_RETURN(PredicatePtr left, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      AQUA_ASSIGN_OR_RETURN(PredicatePtr right, ParseAnd());
      left = Predicate::Or(std::move(left), std::move(right));
    }
    return left;
  }

  struct SelectHead {
    AggregateFunction func;
    std::string attribute;  // empty for COUNT(*)
    bool distinct = false;
  };

  Result<SelectHead> ParseSelectHead() {
    AQUA_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    return ParseAggregateCall();
  }

  /// Parses `AGG([DISTINCT] attr | *)` — used by both the SELECT head and
  /// the HAVING clause.
  Result<SelectHead> ParseAggregateCall() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected aggregate function");
    }
    const auto func = AggregateByName(Peek().text);
    if (!func) {
      return Error("unknown aggregate function '" + Peek().text + "'");
    }
    Advance();
    AQUA_RETURN_NOT_OK(ExpectSymbol("("));
    SelectHead head;
    head.func = *func;
    if (PeekKeyword("DISTINCT")) {
      Advance();
      head.distinct = true;
    }
    if (PeekSymbol("*")) {
      Advance();
      if (head.func != AggregateFunction::kCount) {
        return Error("only COUNT may aggregate '*'");
      }
      if (head.distinct) return Error("COUNT(DISTINCT *) is not supported");
    } else {
      AQUA_ASSIGN_OR_RETURN(head.attribute, ParseAttributeName());
    }
    AQUA_RETURN_NOT_OK(ExpectSymbol(")"));
    return head;
  }

  Result<ParsedQuery> ParseQuery() {
    AQUA_RETURN_NOT_OK(EnterRecursion());
    DepthGuard guard{this};
    AQUA_ASSIGN_OR_RETURN(SelectHead head, ParseSelectHead());
    AQUA_RETURN_NOT_OK(ExpectKeyword("FROM"));

    if (PeekSymbol("(")) {
      // Nested form: FROM ( <query> ) [AS alias].
      Advance();
      AQUA_ASSIGN_OR_RETURN(ParsedQuery inner, ParseQuery());
      if (inner.kind != ParsedQuery::Kind::kSimple) {
        return Error("only one level of aggregate nesting is supported");
      }
      AQUA_RETURN_NOT_OK(ExpectSymbol(")"));
      if (PeekKeyword("AS")) {
        Advance();
        if (Peek().kind != TokenKind::kIdent) {
          return Error("expected alias after AS");
        }
        Advance();
      } else if (Peek().kind == TokenKind::kIdent &&
                 !PeekKeyword("WHERE") && !PeekKeyword("GROUP")) {
        Advance();  // bare alias
      }
      if (head.distinct) {
        return Error("DISTINCT is not supported in the outer aggregate");
      }
      if (head.attribute.empty()) {
        return Error("the outer aggregate must name an attribute");
      }
      ParsedQuery out;
      out.kind = ParsedQuery::Kind::kNested;
      out.nested.outer = head.func;
      out.nested.inner = std::move(inner.simple);
      AQUA_RETURN_NOT_OK(out.nested.Validate());
      return out;
    }

    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected relation name after FROM");
    }
    ParsedQuery out;
    out.kind = ParsedQuery::Kind::kSimple;
    AggregateQuery& q = out.simple;
    q.func = head.func;
    q.attribute = std::move(head.attribute);
    q.distinct = head.distinct;
    q.relation = Advance().text;
    q.where = Predicate::True();
    if (PeekKeyword("AS")) {
      Advance();
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected alias after AS");
      }
      Advance();
    } else if (Peek().kind == TokenKind::kIdent && !PeekKeyword("WHERE") &&
               !PeekKeyword("GROUP")) {
      Advance();  // bare alias, e.g. "FROM T2 R2"
    }
    if (PeekKeyword("WHERE")) {
      Advance();
      AQUA_ASSIGN_OR_RETURN(q.where, ParseOr());
    }
    if (PeekKeyword("GROUP")) {
      Advance();
      AQUA_RETURN_NOT_OK(ExpectKeyword("BY"));
      AQUA_ASSIGN_OR_RETURN(q.group_by, ParseAttributeName());
    }
    if (PeekKeyword("HAVING")) {
      Advance();
      AQUA_ASSIGN_OR_RETURN(SelectHead agg, ParseAggregateCall());
      if (Peek().kind != TokenKind::kSymbol) {
        return Error("expected comparison operator in HAVING");
      }
      const auto op = CompareOpBySymbol(Peek().text);
      if (!op) return Error("expected comparison operator in HAVING");
      Advance();
      AQUA_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
      HavingClause having;
      having.func = agg.func;
      having.attribute = std::move(agg.attribute);
      having.distinct = agg.distinct;
      having.op = *op;
      having.literal = std::move(literal);
      q.having = std::move(having);
    }
    AQUA_RETURN_NOT_OK(q.Validate());
    return out;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<ParsedQuery> SqlParser::Parse(std::string_view sql) {
  obs::TraceSpan span("SqlParser::Parse");
  Lexer lexer(sql);
  AQUA_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<AggregateQuery> SqlParser::ParseSimple(std::string_view sql) {
  AQUA_ASSIGN_OR_RETURN(ParsedQuery q, Parse(sql));
  if (q.kind != ParsedQuery::Kind::kSimple) {
    return Status::InvalidArgument("expected a flat aggregate query");
  }
  return std::move(q.simple);
}

Result<NestedAggregateQuery> SqlParser::ParseNested(std::string_view sql) {
  AQUA_ASSIGN_OR_RETURN(ParsedQuery q, Parse(sql));
  if (q.kind != ParsedQuery::Kind::kNested) {
    return Status::InvalidArgument("expected a nested aggregate query");
  }
  return std::move(q.nested);
}

}  // namespace aqua
