#include "aqua/reformulate/reformulator.h"

#include "aqua/common/string_util.h"

namespace aqua {

Result<AggregateQuery> Reformulator::Reformulate(
    const AggregateQuery& query, const RelationMapping& mapping) {
  AQUA_RETURN_NOT_OK(query.Validate());
  if (!EqualsIgnoreCase(query.relation, mapping.target_relation())) {
    return Status::InvalidArgument(
        "query relation '" + query.relation +
        "' is not the mapping's target relation '" +
        mapping.target_relation() + "'");
  }
  AggregateQuery out;
  out.func = query.func;
  out.distinct = query.distinct;
  out.relation = mapping.source_relation();
  if (!query.attribute.empty()) {
    AQUA_ASSIGN_OR_RETURN(out.attribute, mapping.SourceFor(query.attribute));
  }
  AQUA_ASSIGN_OR_RETURN(
      out.where,
      Predicate::RenameAttributes(
          query.where, [&mapping](const std::string& name) {
            return mapping.SourceFor(name);
          }));
  if (!query.group_by.empty()) {
    AQUA_ASSIGN_OR_RETURN(out.group_by, mapping.SourceFor(query.group_by));
  }
  if (query.having.has_value()) {
    out.having = query.having;
    if (!query.having->attribute.empty()) {
      AQUA_ASSIGN_OR_RETURN(out.having->attribute,
                            mapping.SourceFor(query.having->attribute));
    }
  }
  return out;
}

Result<NestedAggregateQuery> Reformulator::ReformulateNested(
    const NestedAggregateQuery& query, const RelationMapping& mapping) {
  AQUA_RETURN_NOT_OK(query.Validate());
  NestedAggregateQuery out;
  out.outer = query.outer;
  AQUA_ASSIGN_OR_RETURN(out.inner, Reformulate(query.inner, mapping));
  return out;
}

Result<std::vector<Reformulator::MappingBinding>> Reformulator::BindAll(
    const AggregateQuery& query, const PMapping& pmapping,
    const Table& source) {
  AQUA_RETURN_NOT_OK(query.Validate());
  if (!EqualsIgnoreCase(query.relation, pmapping.target_relation())) {
    return Status::InvalidArgument(
        "query relation '" + query.relation +
        "' is not the p-mapping's target relation '" +
        pmapping.target_relation() + "'");
  }
  std::vector<MappingBinding> bindings;
  bindings.reserve(pmapping.size());
  for (size_t i = 0; i < pmapping.size(); ++i) {
    const RelationMapping& m = pmapping.mapping(i);
    MappingBinding binding;
    binding.probability = pmapping.probability(i);

    AQUA_ASSIGN_OR_RETURN(
        PredicatePtr source_pred,
        Predicate::RenameAttributes(
            query.where,
            [&m](const std::string& name) { return m.SourceFor(name); }));
    AQUA_ASSIGN_OR_RETURN(binding.predicate,
                          BoundPredicate::Bind(source_pred, source.schema()));

    if (!query.attribute.empty()) {
      AQUA_ASSIGN_OR_RETURN(std::string source_attr,
                            m.SourceFor(query.attribute));
      AQUA_ASSIGN_OR_RETURN(size_t col_idx,
                            source.schema().IndexOf(source_attr));
      const ValueType type = source.schema().attribute(col_idx).type;
      const bool needs_numeric = query.func == AggregateFunction::kSum ||
                                 query.func == AggregateFunction::kAvg;
      if (needs_numeric && !IsNumeric(type)) {
        return Status::InvalidArgument(
            std::string(AggregateFunctionToString(query.func)) +
            " requires a numeric attribute; '" + source_attr + "' is " +
            std::string(ValueTypeToString(type)));
      }
      if (type == ValueType::kString) {
        return Status::Unimplemented(
            "aggregation over string attribute '" + source_attr + "'");
      }
      binding.attribute = &source.column(col_idx);
    }
    bindings.push_back(std::move(binding));
  }
  return bindings;
}

}  // namespace aqua
