#ifndef AQUA_REFORMULATE_REFORMULATOR_H_
#define AQUA_REFORMULATE_REFORMULATOR_H_

#include <vector>

#include "aqua/common/result.h"
#include "aqua/mapping/p_mapping.h"
#include "aqua/query/ast.h"
#include "aqua/query/executor.h"

namespace aqua {

/// Rewrites queries posed against the mediated (target) schema into queries
/// against a source schema, under one concrete candidate mapping — the
/// reformulation step of the paper's generic by-table algorithm (its
/// Figure 1), and the binding step the by-tuple algorithms perform once per
/// candidate mapping.
class Reformulator {
 public:
  /// Rewrites `query` (whose relation must be the mapping's target
  /// relation) into source terms: every attribute in the aggregate, WHERE,
  /// and GROUP BY is replaced through the mapping. Fails with kNotFound
  /// when a referenced target attribute has no correspondence (like the
  /// paper's unmapped `comments`).
  static Result<AggregateQuery> Reformulate(const AggregateQuery& query,
                                            const RelationMapping& mapping);

  /// Nested variant: reformulates the inner query; the outer aggregate is
  /// schema-free (it ranges over inner results).
  static Result<NestedAggregateQuery> ReformulateNested(
      const NestedAggregateQuery& query, const RelationMapping& mapping);

  /// Everything a per-tuple algorithm needs about one candidate mapping,
  /// pre-resolved against a concrete source table:
  /// the WHERE condition bound to the source schema, the aggregated source
  /// column, and the mapping's probability. Column pointers borrow from
  /// the source table, which must outlive the binding.
  struct MappingBinding {
    BoundPredicate predicate;
    const Column* attribute = nullptr;  // nullptr for COUNT(*)
    double probability = 0.0;
  };

  /// Builds one `MappingBinding` per candidate of `pmapping` for `query`
  /// over `source`. Validates that the query targets the p-mapping's
  /// target relation, that every referenced attribute is mapped under every
  /// candidate, and that SUM/AVG aggregate a numeric source column.
  /// The query's GROUP BY (if any) is *not* resolved here — grouped
  /// by-tuple execution additionally requires the grouping attribute to be
  /// certain, which the engine checks.
  static Result<std::vector<MappingBinding>> BindAll(
      const AggregateQuery& query, const PMapping& pmapping,
      const Table& source);
};

}  // namespace aqua

#endif  // AQUA_REFORMULATE_REFORMULATOR_H_
