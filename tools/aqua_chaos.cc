// aqua_chaos — chaos-test harness over the failpoint inventory.
//
// Enumerates every failpoint site compiled into the library
// (aqua::fault::AllSites()), replays a fixed query workload (the paper's
// DS2 instance + eBay p-mapping, loaded from disk each run so the storage
// and mapping I/O paths are on the execution path) under a set of fault
// specs per site, plus randomized seeded multi-site combinations, and
// asserts the robustness contract: the process never crashes or hangs, and
// every answer is (a) correct and exact — byte-identical to the fault-free
// baseline — (b) flagged approximate, or (c) a well-formed error Status.
// It also demonstrates each degradation edge deterministically:
// parallel-to-serial fallback, exact-to-sampler, I/O retry-then-succeed,
// retry-exhausted, and the four sharded-execution edges (shard death,
// torn shard partial, straggler + hedged re-issue, budget split-brain).
//
//   aqua_chaos [--all] [--site=<name>] [--combos=<n>] [--seed=<n>]
//              [--json=<path>] [--service] [--list] [--help]
//
// --list prints the site inventory and exits. --json writes a
// machine-readable report. --service skips the site sweep and instead
// runs the service-mode chaos edges against a live aquad stack: slow
// client, dropped connection mid-response, deadline storm,
// shed-then-recover, and a SIGTERM drain under load. Exit codes: 0 =
// all runs honoured the contract, 1 = at least one violation (wrong
// un-flagged answer, malformed error, baseline drift), 2 = usage error.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "aqua/common/failpoint.h"
#include "aqua/common/random.h"
#include "aqua/core/engine.h"
#include "aqua/exec/parallel.h"
#include "aqua/exec/thread_pool.h"
#include "aqua/mapping/serialize.h"
#include "aqua/obs/json.h"
#include "aqua/obs/metrics.h"
#include "aqua/query/parser.h"
#include "aqua/server/server.h"
#include "aqua/server/service.h"
#include "aqua/server/signal.h"
#include "aqua/storage/csv.h"
#include "aqua/workload/ebay.h"

namespace {

using namespace aqua;

constexpr int kExitOk = 0;
constexpr int kExitChaosFailure = 1;
constexpr int kExitUsage = 2;

constexpr uint64_t kSamplerSeed = 0xC0FFEE;

struct ChaosArgs {
  bool list = false;
  bool help = false;
  bool service = false;
  std::string only_site;  // empty = all
  size_t combos = 4;
  uint64_t seed = 2009;
  std::string json_path;
};

int Usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: aqua_chaos [--all] [--site=<name>] [--combos=<n>]\n"
      "                  [--seed=<n>] [--json=<path>] [--service]\n"
      "                  [--list] [--help]\n"
      "--all: exercise every registered failpoint site (the default)\n"
      "--site: exercise one site only\n"
      "--combos: randomized multi-site combinations to run (default 4)\n"
      "--seed: seed for the randomized combinations (default 2009)\n"
      "--json: write a machine-readable report to <path>\n"
      "--service: run the service-mode edges (slow client, dropped\n"
      "           connection, deadline storm, shed-then-recover, SIGTERM\n"
      "           drain under load) against a live server and exit\n"
      "--list: print the failpoint site inventory and exit\n"
      "exit codes: 0 = contract held, 1 = violation found, 2 = usage\n");
  return out == stdout ? kExitOk : kExitUsage;
}

/// One query's outcome under one fault configuration.
struct Outcome {
  std::string query;
  std::string kind;    // "exact" | "approximate" | "error" | "VIOLATION"
  std::string detail;  // rendered answer or status
  bool pass = false;
};

std::string OutcomeJson(const Outcome& o) {
  return "{" + obs::JsonString("query", o.query) + ',' +
         obs::JsonString("outcome", o.kind) + ',' +
         obs::JsonString("detail", o.detail) +
         ",\"pass\":" + (o.pass ? "true" : "false") + '}';
}

/// The on-disk fixture every workload run loads from scratch.
struct Fixture {
  std::filesystem::path dir;
  std::string csv_path;
  std::string mapping_path;
  Schema schema;
};

/// A Status is well-formed when it carries a nameable non-OK code and a
/// non-empty message — what the contract demands of every error outcome.
bool WellFormedError(const Status& s) {
  return !s.ok() && StatusCodeToString(s.code()) != std::string_view("unknown") &&
         !s.message().empty();
}

EngineOptions WorkloadEngineOptions() {
  EngineOptions options;
  options.degrade = DegradePolicy::kSample;
  options.degrade_sampler.seed = kSamplerSeed;
  options.threads = 2;
  // Two fault domains put the shard supervisor (and the shard/* failpoint
  // sites) on every workload run's path. The hedge floor is far above the
  // 8-tuple workload's per-shard latency, so no hedge ever fires
  // fault-free — hedging only appears when a straggler is injected.
  options.shards = 2;
  options.hedge.min_wait_ms = 50;
  return options;
}

/// Knobs for the chaos HTTP client: where to pause mid-send (the slow
/// client probe) and whether to abort with an RST instead of reading the
/// response (the dropped-connection-mid-response probe).
struct ClientBehavior {
  int recv_timeout_ms = 3000;
  size_t send_prefix = static_cast<size_t>(-1);  // bytes before the pause
  int pause_ms = 0;
  bool abort_after_send = false;
};

/// Minimal blocking HTTP client: connect to 127.0.0.1:port, send
/// `request`, read to EOF. "" means the server dropped the connection (or
/// the probe aborted on purpose) — never a hang, thanks to SO_RCVTIMEO.
std::string HttpRoundTrip(int port, const std::string& request,
                          const ClientBehavior& behavior = {}) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  timeval tv{};
  tv.tv_sec = behavior.recv_timeout_ms / 1000;
  tv.tv_usec = (behavior.recv_timeout_ms % 1000) * 1000;
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  auto send_all = [&](size_t begin, size_t end) {
    while (begin < end) {
      const ssize_t n =
          send(fd, request.data() + begin, end - begin, MSG_NOSIGNAL);
      if (n <= 0) return false;
      begin += static_cast<size_t>(n);
    }
    return true;
  };
  const size_t split = std::min(behavior.send_prefix, request.size());
  bool sent = send_all(0, split);
  if (sent && split < request.size()) {
    if (behavior.pause_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(behavior.pause_ms));
    }
    sent = send_all(split, request.size());
  }
  if (behavior.abort_after_send) {
    // Close with an immediate RST so the server's response write fails
    // mid-flight rather than landing in a dead socket buffer.
    linger hard{/*l_onoff=*/1, /*l_linger=*/0};
    (void)setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    close(fd);
    return "";
  }
  std::string response;
  if (sent) {
    char chunk[4096];
    while (true) {
      const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      response.append(chunk, static_cast<size_t>(n));
    }
  }
  close(fd);
  return response;
}

std::string PostQueryRequest(const std::string& body) {
  return "POST /query HTTP/1.1\r\nHost: chaos\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

/// Slices the deterministic part out of a 200 /query response body — the
/// admission decision plus the rendered answer. The stats object carries
/// wall-clock times and must not participate in byte comparisons.
std::string DeterministicAnswerSlice(const std::string& body) {
  const size_t decision = body.find("\"decision\":");
  const size_t answer = body.find("\"answer\":");
  const size_t stats = body.find(",\"stats\":");
  if (decision == std::string::npos || answer == std::string::npos ||
      stats == std::string::npos || stats < answer) {
    return body;
  }
  const size_t decision_end = body.find(',', decision);
  return body.substr(decision, decision_end - decision) + ' ' +
         body.substr(answer, stats - answer);
}

/// Runs the fixed workload: load from disk, round-trip the writers, then
/// the query mix (COUNT distribution, SUM range, SUM expected, MIN range,
/// grouped MAX range, nested Q2 range). Returns one Outcome per step with
/// `kind` filled in; `pass` and baseline comparison are the caller's job.
std::vector<Outcome> RunWorkload(const Fixture& fixture) {
  std::vector<Outcome> outcomes;
  auto record_error = [&](std::string name, const Status& status) {
    Outcome o;
    o.query = std::move(name);
    o.kind = "error";
    o.detail = status.ToString();
    outcomes.push_back(std::move(o));
  };
  auto record_answer = [&](std::string name, std::string rendered,
                           bool approximate) {
    Outcome o;
    o.query = std::move(name);
    o.kind = approximate ? "approximate" : "exact";
    o.detail = std::move(rendered);
    outcomes.push_back(std::move(o));
  };

  // Step 1: load the fixture (exercises storage/csv and mapping/serialize
  // read paths, including their retry loops).
  const auto table = Csv::ReadFile(fixture.csv_path, fixture.schema);
  const auto mapping = PMappingText::ReadSchemaFile(fixture.mapping_path);
  if (!table.ok() || !mapping.ok()) {
    record_error("load", table.ok() ? mapping.status() : table.status());
    return outcomes;  // nothing further can run; a clean error is a pass
  }
  const PMapping& pm = mapping->mapping(0);

  // Step 2: writer round-trip (exercises the write paths' retry loops).
  {
    const std::string rt_csv = (fixture.dir / "roundtrip.csv").string();
    const std::string rt_map = (fixture.dir / "roundtrip.pmapping").string();
    const Status wrote_csv = Csv::WriteFile(*table, rt_csv);
    const Status wrote_map = PMappingText::WriteSchemaFile(*mapping, rt_map);
    if (!wrote_csv.ok() || !wrote_map.ok()) {
      record_error("io-roundtrip", wrote_csv.ok() ? wrote_map : wrote_csv);
    } else {
      record_answer("io-roundtrip", "ok", /*approximate=*/false);
    }
  }

  // Step 3: a synthetic parallel region. The paper's 8-tuple instance is
  // far below the kernels' chunk grain, so the query mix alone never
  // engages the thread pool; this step chunks finely enough (chunk_size 1,
  // 64 chunks) that the exec/pool/* sites are on every workload run's
  // path, and its answer is a deterministic scalar.
  {
    std::vector<double> out(64, 0.0);
    const Status ran = exec::ParallelFor(
        exec::ExecPolicy{/*threads=*/2}, out.size(), /*chunk_size=*/1,
        /*parent=*/nullptr,
        [&](const exec::Chunk& chunk, ExecContext*) -> Status {
          for (size_t i = chunk.begin; i < chunk.end; ++i) {
            out[i] = static_cast<double>(i);
          }
          return Status::OK();
        });
    if (ran.ok()) {
      double sum = 0.0;
      for (double v : out) sum += v;
      record_answer("parallel-region", std::to_string(sum),
                    /*approximate=*/false);
    } else {
      record_error("parallel-region", ran);
    }
  }

  const Engine engine(WorkloadEngineOptions());
  const auto run_sql = [&](const char* name, const char* sql,
                           AggregateSemantics as) {
    const auto answer = engine.AnswerSql(sql, pm, *table,
                                         MappingSemantics::kByTuple, as);
    if (answer.ok()) {
      record_answer(name, answer->ToString(), answer->approximate);
    } else {
      record_error(name, answer.status());
    }
  };
  run_sql("count-dist", "SELECT COUNT(*) FROM T2 WHERE price > 300",
          AggregateSemantics::kDistribution);
  run_sql("sum-range", "SELECT SUM(price) FROM T2 WHERE auctionId = 34",
          AggregateSemantics::kRange);
  run_sql("sum-expected", "SELECT SUM(price) FROM T2",
          AggregateSemantics::kExpectedValue);
  run_sql("min-range", "SELECT MIN(price) FROM T2",
          AggregateSemantics::kRange);
  {
    const auto grouped = engine.AnswerGroupedSql(
        "SELECT MAX(price) FROM T2 GROUP BY auctionId", pm, *table,
        MappingSemantics::kByTuple, AggregateSemantics::kRange);
    if (grouped.ok()) {
      std::string rendered;
      bool approximate = false;
      for (const GroupedAnswer& g : *grouped) {
        rendered += g.group.ToString() + '=' + g.answer.ToString() + ';';
        approximate = approximate || g.answer.approximate;
      }
      record_answer("grouped-max-range", std::move(rendered), approximate);
    } else {
      record_error("grouped-max-range", grouped.status());
    }
  }
  {
    const auto nested =
        engine.AnswerNested(PaperQueryQ2(), pm, *table,
                            MappingSemantics::kByTuple,
                            AggregateSemantics::kRange);
    if (nested.ok()) {
      record_answer("nested-q2-range", nested->ToString(),
                    nested->approximate);
    } else {
      record_error("nested-q2-range", nested.status());
    }
  }

  // Final step: one service round-trip over a real socket, which puts the
  // four server/* failpoint sites (accept, read-request, admission,
  // write-response) on every workload run's path. Only the deterministic
  // slice of the response — admission decision plus rendered answer —
  // participates in the byte-identical baseline comparison.
  {
    server::QueryServiceOptions service_options;
    service_options.engine = WorkloadEngineOptions();
    server::QueryService service(*table, pm, service_options);
    server::HttpServerOptions http_options;
    http_options.io_timeout_ms = 2000;
    server::HttpServer http(&service, http_options);
    const Status started = http.Start();
    if (!started.ok()) {
      record_error("server-query", started);
    } else {
      const std::string response = HttpRoundTrip(
          http.port(),
          PostQueryRequest(
              R"({"query":"SELECT COUNT(*) FROM T2 WHERE price > 300",)"
              R"("answer":"expected","deadline_ms":10000})"));
      const size_t body_at = response.find("\r\n\r\n");
      if (response.empty() || body_at == std::string::npos) {
        record_error("server-query",
                     Status::Unavailable("server dropped the connection"));
      } else {
        const std::string payload = response.substr(body_at + 4);
        if (response.compare(0, 15, "HTTP/1.1 200 OK") == 0) {
          record_answer(
              "server-query", DeterministicAnswerSlice(payload),
              payload.find("\"approximate\":true") != std::string::npos);
        } else {
          // Non-200: the payload is the service's uniform error envelope.
          record_error("server-query",
                       Status::Unavailable("service error: " + payload));
        }
      }
      (void)http.Shutdown(/*drain_deadline_ms=*/2000);
    }
  }
  return outcomes;
}

/// Grades a chaos run against the baseline. Every outcome must be exact
/// and byte-identical to the baseline, flagged approximate, or a
/// well-formed error. Any other shape is a contract violation.
size_t Grade(std::vector<Outcome>* outcomes,
             const std::vector<Outcome>& baseline) {
  size_t violations = 0;
  for (Outcome& o : *outcomes) {
    if (o.kind == "exact") {
      const Outcome* base = nullptr;
      for (const Outcome& b : baseline) {
        if (b.query == o.query) base = &b;
      }
      o.pass = base != nullptr && base->detail == o.detail;
      if (!o.pass) {
        o.kind = "VIOLATION";
        o.detail = "un-flagged answer differs from baseline: " + o.detail;
      }
    } else if (o.kind == "approximate") {
      o.pass = true;
    } else if (o.kind == "error") {
      // RunWorkload only records "error" for a Status that already passed
      // through the library's Result plumbing; re-check its shape here.
      o.pass = !o.detail.empty() && o.detail.find(": ") != std::string::npos;
      if (!o.pass) o.kind = "VIOLATION";
    }
    if (!o.pass) ++violations;
  }
  return violations;
}

/// Fault specs to try against `site`. Every site gets the transient /
/// persistent / fail-late / delay mix; sites with special context get
/// extra specs that reach their unique edges.
std::vector<std::string> SpecsFor(const fault::SiteInfo& site) {
  std::vector<std::string> specs = {
      "once*error(unavailable)", "error(unavailable)",
      "once*error(internal)",    "after(2)*error(unavailable)",
      "delay(5)",
  };
  const std::string name(site.name);
  if (name.find("read-file") != std::string::npos) {
    specs.push_back("once*partial");
  }
  if (name == "common/exec_context/check") {
    specs.push_back("once*error(deadline-exceeded)");
  }
  if (name == "core/engine/exact") {
    specs.push_back("error(resource-exhausted)");
  }
  if (name == "shard/run") {
    // Torn shard partial: the attempt scans only half its rows; the
    // supervisor's coverage check must catch it (degrade or clean error,
    // never a silently short answer).
    specs.push_back("once*partial");
  }
  return specs;
}

/// Extra failpoints that must be armed alongside `site` so the workload
/// actually reaches it: the degrade/sampler sites only execute after the
/// exact pass has failed with a degradable error.
std::vector<std::pair<std::string, std::string>> CompanionsFor(
    std::string_view site) {
  if (site == "core/engine/degrade" || site == "core/sampler/run") {
    return {{"core/engine/exact", "error(resource-exhausted)"}};
  }
  if (site == "shard/hedge") {
    // The hedge submission point only executes once a shard straggles;
    // a one-shot delay on the first shard attempt manufactures the
    // straggler (400ms >> the 50ms hedge floor).
    return {{"shard/run", "once*delay(400)"}};
  }
  return {};
}

uint64_t CounterValue(const char* name, obs::LabelSet labels = {}) {
  return obs::MetricsRegistry::Default().GetCounter(name, std::move(labels))
      .value();  // aqua-lint: allow(unchecked-result-value) Counter, not Result
}

/// The deterministic degradation-edge demonstrations the acceptance
/// criteria call for. Each returns a pass/fail Outcome for the report.
std::vector<Outcome> RunEdgeDemos(const Fixture& fixture,
                                  const std::vector<Outcome>& baseline) {
  std::vector<Outcome> edges;
  auto record = [&](const char* edge, bool pass, std::string detail) {
    edges.push_back(Outcome{edge, pass ? "pass" : "VIOLATION",
                            std::move(detail), pass});
  };

  // Edge 1: I/O retry-then-succeed. A transient read failure on the first
  // attempt is retried and the load succeeds; the retry is visible in the
  // metrics registry.
  {
    fault::DisableAll();
    const uint64_t attempts_before =
        CounterValue("aqua_retry_attempts_total", {{"op", "csv-read"}});
    fault::ScopedFailpoint fp("storage/csv/read-file",
                              "once*error(unavailable)");
    const auto table = Csv::ReadFile(fixture.csv_path, fixture.schema);
    const uint64_t attempts =
        CounterValue("aqua_retry_attempts_total", {{"op", "csv-read"}}) -
        attempts_before;
    const auto stats = fault::StatsFor("storage/csv/read-file");
    const bool pass = table.ok() && stats.fire_count == 1 && attempts == 2;
    record("io-retry-then-succeed", pass,
           "read ok=" + std::string(table.ok() ? "true" : "false") +
               " fired=" + std::to_string(stats.fire_count) +
               " attempts=" + std::to_string(attempts));
  }

  // Edge 2: retry-exhausted. A persistent transient failure survives every
  // attempt and surfaces as the real kUnavailable, cleanly.
  {
    fault::DisableAll();
    const uint64_t exhausted_before =
        CounterValue("aqua_retry_exhausted_total", {{"op", "csv-read"}});
    fault::ScopedFailpoint fp("storage/csv/read-file", "error(unavailable)");
    const auto table = Csv::ReadFile(fixture.csv_path, fixture.schema);
    const uint64_t exhausted =
        CounterValue("aqua_retry_exhausted_total", {{"op", "csv-read"}}) -
        exhausted_before;
    const bool pass = !table.ok() &&
                      table.status().code() == StatusCode::kUnavailable &&
                      WellFormedError(table.status()) && exhausted == 1;
    record("io-retry-exhausted", pass, table.status().ToString());
  }

  // Edge 3: exact-to-sampler. An injected resource-exhaustion in the exact
  // pass degrades to Monte-Carlo sampling; the answer is flagged
  // approximate and carries the sampler seed for reproducibility.
  {
    fault::DisableAll();
    fault::ScopedFailpoint fp("core/engine/exact",
                              "error(resource-exhausted)");
    const auto table = Csv::ReadFile(fixture.csv_path, fixture.schema);
    const auto mapping = PMappingText::ReadSchemaFile(fixture.mapping_path);
    bool pass = false;
    std::string detail = "fixture load failed";
    if (table.ok() && mapping.ok()) {
      const Engine engine(WorkloadEngineOptions());
      const auto answer = engine.Answer(
          PaperQueryQ2Prime(), mapping->mapping(0), *table,
          MappingSemantics::kByTuple, AggregateSemantics::kExpectedValue);
      pass = answer.ok() && answer->approximate && answer->stats.degraded &&
             answer->stats.sampler_seed == kSamplerSeed &&
             answer->stats.samples > 0;
      detail = answer.ok() ? answer->ToString() + " sampler_seed=" +
                                 std::to_string(answer->stats.sampler_seed)
                           : answer.status().ToString();
    }
    record("exact-to-sampler", pass, std::move(detail));
  }

  // Edge 4: parallel-to-serial fallback. When the pool cannot take tasks,
  // the parallel region runs inline on the calling thread and every query
  // answer is byte-identical to the parallel baseline. The server step is
  // the one legitimate exception: a server cannot run without its accept
  // thread, so it must either match the baseline or fail with a clean,
  // well-formed kUnavailable — never a wrong answer.
  {
    fault::DisableAll();
    const uint64_t fallback_before =
        CounterValue("aqua_exec_serial_fallback_total");
    fault::ScopedFailpoint fp("exec/pool/spawn", "error(unavailable)");
    std::vector<Outcome> outcomes = RunWorkload(fixture);
    const uint64_t fallbacks =
        CounterValue("aqua_exec_serial_fallback_total") - fallback_before;
    bool identical = outcomes.size() == baseline.size();
    for (size_t i = 0; identical && i < outcomes.size(); ++i) {
      if (outcomes[i].query == "server-query" &&
          outcomes[i].kind == "error") {
        identical = outcomes[i].detail.find("unavailable") !=
                    std::string::npos;
        continue;
      }
      identical = outcomes[i].kind == baseline[i].kind &&
                  outcomes[i].detail == baseline[i].detail;
    }
    record("parallel-to-serial", identical && fallbacks > 0,
           "identical=" + std::string(identical ? "true" : "false") +
               " fallbacks=" + std::to_string(fallbacks));
  }

  // The sharded-execution edges all run the same decomposable COUNT
  // distribution query across the two workload fault domains.
  constexpr const char* kShardSql = "SELECT COUNT(*) FROM T2 WHERE price > 300";

  // Edge 5: shard death. A persistent failure kills every primary shard
  // attempt; each shard degrades locally to Monte-Carlo sampling and the
  // merged answer is flagged approximate, carrying the degraded-shard
  // count — the query itself never fails.
  {
    fault::DisableAll();
    const auto table = Csv::ReadFile(fixture.csv_path, fixture.schema);
    const auto mapping = PMappingText::ReadSchemaFile(fixture.mapping_path);
    bool pass = false;
    std::string detail = "fixture load failed";
    if (table.ok() && mapping.ok()) {
      const Engine engine(WorkloadEngineOptions());
      fault::ScopedFailpoint fp("shard/run", "error(unavailable)");
      const auto answer = engine.AnswerSql(
          kShardSql, mapping->mapping(0), *table, MappingSemantics::kByTuple,
          AggregateSemantics::kDistribution);
      pass = answer.ok() && answer->approximate && answer->stats.degraded &&
             answer->stats.shards == 2 && answer->stats.degraded_shards == 2;
      detail = answer.ok()
                   ? answer->ToString() + " degraded_shards=" +
                         std::to_string(answer->stats.degraded_shards) + "/" +
                         std::to_string(answer->stats.shards)
                   : answer.status().ToString();
    }
    record("shard-death", pass, std::move(detail));
  }

  // Edge 6: torn shard partial. One shard attempt scans only a prefix of
  // its rows; the supervisor's coverage check must catch the short partial
  // and either degrade the shard or fail cleanly — never merge it into a
  // silently wrong answer.
  {
    fault::DisableAll();
    const auto table = Csv::ReadFile(fixture.csv_path, fixture.schema);
    const auto mapping = PMappingText::ReadSchemaFile(fixture.mapping_path);
    bool pass = false;
    std::string detail = "fixture load failed";
    if (table.ok() && mapping.ok()) {
      const Engine engine(WorkloadEngineOptions());
      fault::ScopedFailpoint fp("shard/run", "once*partial");
      const auto answer = engine.AnswerSql(
          kShardSql, mapping->mapping(0), *table, MappingSemantics::kByTuple,
          AggregateSemantics::kDistribution);
      if (answer.ok()) {
        pass = answer->approximate && answer->stats.degraded_shards >= 1;
        detail = answer->ToString() + " degraded_shards=" +
                 std::to_string(answer->stats.degraded_shards);
      } else {
        pass = WellFormedError(answer.status());
        detail = answer.status().ToString();
      }
    }
    record("shard-torn-partial", pass, std::move(detail));
  }

  // Edge 7: straggler storm. A one-shot 400ms delay on one shard's first
  // attempt forces the supervisor to hedge a duplicate; the hedge's result
  // wins, the answer is byte-identical to the fault-free run, and the wall
  // time stays within the acceptance bound (2x fault-free, floored at
  // 500ms so the bound is meaningful at microsecond baselines).
  {
    fault::DisableAll();
    const auto table = Csv::ReadFile(fixture.csv_path, fixture.schema);
    const auto mapping = PMappingText::ReadSchemaFile(fixture.mapping_path);
    bool pass = false;
    std::string detail = "fixture load failed";
    if (table.ok() && mapping.ok()) {
      const Engine engine(WorkloadEngineOptions());
      const auto run = [&]() {
        return engine.AnswerSql(kShardSql, mapping->mapping(0), *table,
                                MappingSemantics::kByTuple,
                                AggregateSemantics::kDistribution);
      };
      const auto clean_start = std::chrono::steady_clock::now();
      const auto clean = run();
      const int64_t clean_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - clean_start)
              .count();
      fault::ScopedFailpoint fp("shard/run", "once*delay(400)");
      const auto hedged_start = std::chrono::steady_clock::now();
      const auto hedged = run();
      const int64_t hedged_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - hedged_start)
              .count();
      const int64_t bound_us = std::max<int64_t>(2 * clean_us, 500000);
      pass = clean.ok() && hedged.ok() &&
             clean->ToString() == hedged->ToString() &&
             hedged->stats.hedged_shards >= 1 && hedged_us <= bound_us;
      detail = (clean.ok() && hedged.ok())
                   ? "identical=" +
                         std::string(clean->ToString() == hedged->ToString()
                                         ? "true"
                                         : "false") +
                         " hedged_shards=" +
                         std::to_string(hedged->stats.hedged_shards) +
                         " wall=" + std::to_string(hedged_us) + "us bound=" +
                         std::to_string(bound_us) + "us"
                   : (clean.ok() ? hedged.status() : clean.status())
                         .ToString();
    }
    record("shard-straggler", pass, std::move(detail));
  }

  // Edge 8: budget split-brain. A governed query with a forced hedge must
  // charge the parent budget exactly once per shard (the winner's charges;
  // the superseded loser's are discarded as waste) — the supervisor's
  // absorb-once AQUA_CHECK aborts the process if both attempts ever
  // charge. Two identical runs must agree on the answer and on every
  // charged step, which is only possible when exactly one attempt per
  // shard is absorbed.
  {
    fault::DisableAll();
    const auto table = Csv::ReadFile(fixture.csv_path, fixture.schema);
    const auto mapping = PMappingText::ReadSchemaFile(fixture.mapping_path);
    bool pass = false;
    std::string detail = "fixture load failed";
    if (table.ok() && mapping.ok()) {
      EngineOptions governed = WorkloadEngineOptions();
      governed.limits.max_steps = 1 << 20;
      const Engine engine(governed);
      const auto run_once = [&]() {
        fault::ScopedFailpoint fp("shard/run", "once*delay(400)");
        return engine.AnswerSql(kShardSql, mapping->mapping(0), *table,
                                MappingSemantics::kByTuple,
                                AggregateSemantics::kDistribution);
      };
      const auto first = run_once();
      const auto second = run_once();
      pass = first.ok() && second.ok() && !first->approximate &&
             first->ToString() == second->ToString() &&
             first->stats.steps == second->stats.steps &&
             first->stats.steps > 0;
      detail = (first.ok() && second.ok())
                   ? "steps=" + std::to_string(first->stats.steps) + "/" +
                         std::to_string(second->stats.steps) +
                         " hedged_shards=" +
                         std::to_string(first->stats.hedged_shards) + "/" +
                         std::to_string(second->stats.hedged_shards)
                   : (first.ok() ? second.status() : first.status())
                         .ToString();
    }
    record("shard-budget-split-brain", pass, std::move(detail));
  }
  fault::DisableAll();
  return edges;
}

/// A live aquad stack (service + HTTP front end) for the service-mode
/// edges. Fresh per edge so state never bleeds between probes.
struct ServiceRig {
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::HttpServer> http;
};

Result<ServiceRig> MakeServiceRig(int io_timeout_ms) {
  AQUA_ASSIGN_OR_RETURN(Table ds2, PaperInstanceDS2());
  AQUA_ASSIGN_OR_RETURN(PMapping pm, MakeEbayPMapping());
  server::QueryServiceOptions options;
  options.engine = WorkloadEngineOptions();
  ServiceRig rig;
  rig.service = std::make_unique<server::QueryService>(
      std::move(ds2), std::move(pm), options);
  server::HttpServerOptions http_options;
  http_options.io_timeout_ms = io_timeout_ms;
  rig.http = std::make_unique<server::HttpServer>(rig.service.get(),
                                                  http_options);
  AQUA_RETURN_NOT_OK(rig.http->Start());
  return rig;
}

bool Healthy(int port) {
  return HttpRoundTrip(port, "GET /healthz HTTP/1.1\r\nHost: c\r\n\r\n")
             .find("{\"ok\":true}") != std::string::npos;
}

constexpr const char kEdgeQuery[] =
    R"({"query":"SELECT SUM(price) FROM T2","answer":"expected",)"
    R"("deadline_ms":10000})";

/// The service-mode chaos edges: a hostile or overloaded client world,
/// and the server must keep every promise — well-formed responses,
/// flagged approximations, zero dropped in-flight work on drain.
std::vector<Outcome> RunServiceEdges() {
  std::vector<Outcome> edges;
  auto record = [&](const char* edge, bool pass, std::string detail) {
    edges.push_back(Outcome{edge, pass ? "pass" : "VIOLATION",
                            std::move(detail), pass});
  };

  // Edge 1: slow client. A client that stalls mid-request holds its
  // connection slot for at most io_timeout_ms, then the server cuts it
  // loose and keeps serving everyone else.
  {
    fault::DisableAll();
    auto rig = MakeServiceRig(/*io_timeout_ms=*/200);
    if (!rig.ok()) {
      record("slow-client", false, rig.status().ToString());
    } else {
      ClientBehavior slow;
      slow.send_prefix = 10;   // stall inside the request line
      slow.pause_ms = 600;     // three times the server's io timeout
      const std::string response =
          HttpRoundTrip(rig->http->port(), PostQueryRequest(kEdgeQuery), slow);
      const bool cut = response.empty();
      const bool healthy = Healthy(rig->http->port());
      record("slow-client", cut && healthy,
             "stalled connection cut=" + std::string(cut ? "true" : "false") +
                 " server healthy after=" +
                 std::string(healthy ? "true" : "false"));
      (void)rig->http->Shutdown(2000);
    }
  }

  // Edge 2: dropped connection mid-response. The client vanishes (RST)
  // while its query is still executing; the response write fails, the
  // failure is counted, and the server survives.
  {
    fault::DisableAll();
    auto rig = MakeServiceRig(/*io_timeout_ms=*/2000);
    if (!rig.ok()) {
      record("dropped-connection", false, rig.status().ToString());
    } else {
      const uint64_t failed_before =
          CounterValue("aqua_server_write_failed_total");
      fault::ScopedFailpoint slow_engine("core/engine/exact", "delay(150)");
      ClientBehavior vanish;
      vanish.abort_after_send = true;
      (void)HttpRoundTrip(rig->http->port(), PostQueryRequest(kEdgeQuery),
                          vanish);
      // Give the in-flight request time to finish and hit the dead socket.
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
      const uint64_t failed =
          CounterValue("aqua_server_write_failed_total") - failed_before;
      const bool healthy = Healthy(rig->http->port());
      record("dropped-connection", failed >= 1 && healthy,
             "write failures=" + std::to_string(failed) +
                 " server healthy after=" +
                 std::string(healthy ? "true" : "false"));
      (void)rig->http->Shutdown(2000);
    }
  }

  // Edge 3: deadline storm. A burst of requests whose budgets are already
  // (or nearly) exhausted: every one gets a well-formed response — either
  // a flagged approximation or a clean deadline error — and the server is
  // healthy afterwards.
  {
    fault::DisableAll();
    auto rig = MakeServiceRig(/*io_timeout_ms=*/2000);
    if (!rig.ok()) {
      record("deadline-storm", false, rig.status().ToString());
    } else {
      fault::ScopedFailpoint slow_engine("core/engine/exact", "delay(50)");
      constexpr int kStorm = 6;
      int well_formed = 0, errors = 0, approximate = 0;
      for (int i = 0; i < kStorm; ++i) {
        const std::string response = HttpRoundTrip(
            rig->http->port(),
            PostQueryRequest(
                R"({"query":"SELECT SUM(price) FROM T2",)"
                R"("answer":"expected","deadline_ms":1})"));
        if (response.find("\"ok\":false") != std::string::npos &&
            response.find("deadline") != std::string::npos) {
          ++well_formed;
          ++errors;
        } else if (response.find("\"ok\":true") != std::string::npos &&
                   response.find("\"approximate\":true") !=
                       std::string::npos) {
          ++well_formed;
          ++approximate;
        }
      }
      const bool healthy = Healthy(rig->http->port());
      record("deadline-storm", well_formed == kStorm && healthy,
             std::to_string(well_formed) + "/" + std::to_string(kStorm) +
                 " well-formed (errors=" + std::to_string(errors) +
                 " approximate=" + std::to_string(approximate) +
                 ") server healthy after=" +
                 std::string(healthy ? "true" : "false"));
      (void)rig->http->Shutdown(2000);
    }
  }

  // Edge 4: shed-then-recover. Push the admission decision into the shed
  // band (via the server/admission failpoint — the deterministic stand-in
  // for a watermark breach), verify the flagged approximate answer, then
  // recover and verify the exact answer is byte-identical to the
  // pre-shed baseline.
  {
    fault::DisableAll();
    auto rig = MakeServiceRig(/*io_timeout_ms=*/2000);
    if (!rig.ok()) {
      record("shed-then-recover", false, rig.status().ToString());
    } else {
      auto query_slice = [&](std::string* out) {
        const std::string response =
            HttpRoundTrip(rig->http->port(), PostQueryRequest(kEdgeQuery));
        const size_t at = response.find("\r\n\r\n");
        if (at == std::string::npos) return false;
        *out = DeterministicAnswerSlice(response.substr(at + 4));
        return response.find("HTTP/1.1 200") != std::string::npos;
      };
      std::string before, during, after;
      bool ok = query_slice(&before) &&
                before.find("\"decision\":\"admit\"") != std::string::npos;
      {
        fault::ScopedFailpoint shed("server/admission",
                                    "error(resource-exhausted)");
        ok = ok && query_slice(&during) &&
             during.find("\"decision\":\"shed\"") != std::string::npos &&
             during.find("\"approximate\":true") != std::string::npos;
      }
      ok = ok && query_slice(&after) && after == before;
      record("shed-then-recover", ok,
             "recovered answer identical=" +
                 std::string(after == before ? "true" : "false") +
                 " shed slice: " + during);
      (void)rig->http->Shutdown(2000);
    }
  }

  // Edge 5: SIGTERM drain under load. A real signal lands while a query
  // is in flight; admission stops, the in-flight answer completes in
  // full, the drain reports clean, and nothing is served afterwards.
  {
    fault::DisableAll();
    auto rig = MakeServiceRig(/*io_timeout_ms=*/5000);
    if (!rig.ok()) {
      record("sigterm-drain", false, rig.status().ToString());
    } else {
      server::InstallDrainHandlers();
      server::ResetDrainFlag();
      fault::ScopedFailpoint slow_engine("core/engine/exact", "delay(300)");
      std::string response;
      std::atomic<bool> done{false};
      exec::ThreadPool client(1);
      const int port = rig->http->port();
      const bool submitted = client.Submit([&response, &done, port] {
        response = HttpRoundTrip(port, PostQueryRequest(kEdgeQuery));
        done.store(true);
      });
      // Wait for the request to be admitted, then deliver the signal.
      const auto give_up =
          std::chrono::steady_clock::now() + std::chrono::seconds(3);
      while (submitted && rig->service->admission().inflight() == 0 &&
             std::chrono::steady_clock::now() < give_up) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      const bool admitted = rig->service->admission().inflight() > 0;
      (void)std::raise(SIGTERM);
      const bool flagged = server::DrainRequested();
      rig->http->RequestDrain();
      const Status drained = rig->http->Shutdown(/*drain_deadline_ms=*/5000);
      while (submitted && !done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      const bool answered =
          response.find("HTTP/1.1 200") != std::string::npos &&
          response.find("\"ok\":true") != std::string::npos;
      const bool dead_after = !Healthy(port);
      server::ResetDrainFlag();
      record("sigterm-drain",
             submitted && admitted && flagged && drained.ok() && answered &&
                 dead_after,
             "admitted=" + std::string(admitted ? "true" : "false") +
                 " signal flagged=" + std::string(flagged ? "true" : "false") +
                 " drain=" + drained.ToString() +
                 " in-flight answered=" +
                 std::string(answered ? "true" : "false") +
                 " serving after=" + std::string(dead_after ? "no" : "YES"));
    }
  }
  fault::DisableAll();
  return edges;
}

int RunServiceMode(const ChaosArgs& args) {
  const std::vector<Outcome> edges = RunServiceEdges();
  size_t violations = 0;
  std::string json = "\"service_edges\":[";
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) json += ',';
    json += OutcomeJson(edges[i]);
    if (!edges[i].pass) ++violations;
    std::fprintf(stderr, "service edge %-22s %s (%s)\n",
                 edges[i].query.c_str(),
                 edges[i].pass ? "pass" : "VIOLATION",
                 edges[i].detail.c_str());
  }
  json += "],\"summary\":{\"runs\":" + std::to_string(edges.size()) +
          ",\"violations\":" + std::to_string(violations) + '}';
  if (!args.json_path.empty()) {
    std::FILE* out = std::fopen(args.json_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return kExitChaosFailure;
    }
    std::fprintf(out, "{%s}\n", json.c_str());
    std::fclose(out);
    std::fprintf(stderr, "report: %s\n", args.json_path.c_str());
  }
  std::fprintf(stderr, "service chaos: %zu edges, %zu violation(s)\n",
               edges.size(), violations);
  return violations == 0 ? kExitOk : kExitChaosFailure;
}

Result<ChaosArgs> ParseChaosArgs(int argc, char** argv) {
  ChaosArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.resize(eq);
    }
    auto number = [&](uint64_t* out) -> Status {
      try {
        size_t pos = 0;
        *out = std::stoull(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
        return Status::OK();
      } catch (...) {
        return Status::InvalidArgument(arg + " expects an integer, got '" +
                                       value + "'");
      }
    };
    if (arg == "--all") {
      args.only_site.clear();
    } else if (arg == "--site") {
      args.only_site = value;
    } else if (arg == "--combos") {
      uint64_t n = 0;
      AQUA_RETURN_NOT_OK(number(&n));
      args.combos = static_cast<size_t>(n);
    } else if (arg == "--seed") {
      AQUA_RETURN_NOT_OK(number(&args.seed));
    } else if (arg == "--json") {
      args.json_path = value;
    } else if (arg == "--service") {
      args.service = true;
    } else if (arg == "--list") {
      args.list = true;
    } else if (arg == "--help" || arg == "-h") {
      args.help = true;
    } else {
      return Status::InvalidArgument("unknown flag '" + std::string(argv[i]) +
                                     "'");
    }
  }
  return args;
}

Result<Fixture> WriteFixture() {
  Fixture fixture;
  fixture.dir = std::filesystem::temp_directory_path() /
                ("aqua_chaos_" + std::to_string(::getpid()));
  std::error_code ec;
  std::filesystem::create_directories(fixture.dir, ec);
  if (ec) {
    return Status::Internal("cannot create fixture dir: " + ec.message());
  }
  AQUA_ASSIGN_OR_RETURN(Table ds2, PaperInstanceDS2());
  AQUA_ASSIGN_OR_RETURN(PMapping pm, MakeEbayPMapping());
  AQUA_ASSIGN_OR_RETURN(SchemaPMapping schema_pm,
                        SchemaPMapping::Make({std::move(pm)}));
  fixture.schema = ds2.schema();
  fixture.csv_path = (fixture.dir / "ds2.csv").string();
  fixture.mapping_path = (fixture.dir / "ebay.pmapping").string();
  AQUA_RETURN_NOT_OK(Csv::WriteFile(ds2, fixture.csv_path));
  AQUA_RETURN_NOT_OK(
      PMappingText::WriteSchemaFile(schema_pm, fixture.mapping_path));
  return fixture;
}

int RunChaos(const ChaosArgs& args) {
  const auto fixture = WriteFixture();
  if (!fixture.ok()) {
    std::fprintf(stderr, "fixture: %s\n",
                 fixture.status().ToString().c_str());
    return kExitChaosFailure;
  }
  struct FixtureCleanup {
    const std::filesystem::path dir;
    ~FixtureCleanup() {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  } cleanup{fixture->dir};

  size_t total_runs = 0;
  size_t violations = 0;
  std::string json;

  // Baseline: all failpoints disabled, run twice; the two runs must be
  // byte-identical and violation-free (this is the acceptance criterion's
  // "byte-identical answers when all failpoints are disabled").
  fault::DisableAll();
  std::vector<Outcome> baseline = RunWorkload(*fixture);
  {
    const std::vector<Outcome> again = RunWorkload(*fixture);
    bool identical = baseline.size() == again.size();
    for (size_t i = 0; identical && i < baseline.size(); ++i) {
      identical = baseline[i].kind == again[i].kind &&
                  baseline[i].detail == again[i].detail;
    }
    bool clean = identical;
    for (const Outcome& o : baseline) clean = clean && o.kind == "exact";
    total_runs += 2;
    if (!clean) ++violations;
    std::fprintf(stderr, "baseline: %s (%zu steps)\n",
                 clean ? "byte-identical, all exact" : "VIOLATION",
                 baseline.size());
    json += "\"baseline\":{\"identical\":" +
            std::string(identical ? "true" : "false") + ",\"queries\":[";
    for (size_t i = 0; i < baseline.size(); ++i) {
      if (i > 0) json += ',';
      json += OutcomeJson(baseline[i]);
    }
    json += "]}";
  }

  // Per-site sweep.
  json += ",\"sites\":[";
  size_t sites_exercised = 0;
  bool first_site = true;
  for (const fault::SiteInfo& site : fault::AllSites()) {
    if (!args.only_site.empty() && args.only_site != site.name) continue;
    ++sites_exercised;
    if (!first_site) json += ',';
    first_site = false;
    json += "{" + obs::JsonString("site", std::string(site.name)) +
            ",\"runs\":[";
    uint64_t site_fires = 0;
    bool first_run = true;
    for (const std::string& spec : SpecsFor(site)) {
      fault::DisableAll();
      for (const auto& [companion_site, companion_spec] :
           CompanionsFor(site.name)) {
        (void)fault::Enable(companion_site, companion_spec);
      }
      const Status armed = fault::Enable(site.name, spec);
      if (!armed.ok()) {
        std::fprintf(stderr, "%s: cannot arm '%s': %s\n",
                     std::string(site.name).c_str(), spec.c_str(),
                     armed.ToString().c_str());
        ++violations;
        continue;
      }
      std::vector<Outcome> outcomes = RunWorkload(*fixture);
      const auto stats = fault::StatsFor(site.name);
      site_fires += stats.fire_count;
      fault::DisableAll();
      const size_t run_violations = Grade(&outcomes, baseline);
      violations += run_violations;
      ++total_runs;
      if (!first_run) json += ',';
      first_run = false;
      json += "{" + obs::JsonString("spec", spec) +
              ",\"hits\":" + std::to_string(stats.hit_count) +
              ",\"fires\":" + std::to_string(stats.fire_count) +
              ",\"pass\":" + (run_violations == 0 ? "true" : "false") +
              ",\"outcomes\":[";
      for (size_t i = 0; i < outcomes.size(); ++i) {
        if (i > 0) json += ',';
        json += OutcomeJson(outcomes[i]);
      }
      json += "]}";
      if (run_violations > 0) {
        std::fprintf(stderr, "%s under '%s': %zu VIOLATION(s)\n",
                     std::string(site.name).c_str(), spec.c_str(),
                     run_violations);
      }
    }
    // Coverage within the suite: the site must actually have fired under
    // at least one spec, otherwise the sweep proved nothing about it.
    if (site_fires == 0) {
      std::fprintf(stderr, "%s: never fired under any spec — not covered\n",
                   std::string(site.name).c_str());
      ++violations;
    }
    json += "],\"fires\":" + std::to_string(site_fires) + '}';
  }
  json += ']';

  // Randomized seeded combinations: several sites armed at once with
  // probabilistic triggers. Deterministic for a fixed --seed.
  json += ",\"combos\":[";
  const std::vector<fault::SiteInfo>& all_sites = fault::AllSites();
  for (size_t k = 0; k < args.combos; ++k) {
    uint64_t stream = SplitMix64(args.seed ^ (0x9E37 + k));
    const size_t num_armed = 2 + stream % 3;  // 2..4 sites
    fault::DisableAll();
    std::vector<std::string> armed;
    for (size_t a = 0; a < num_armed; ++a) {
      stream = SplitMix64(stream);
      const fault::SiteInfo& site = all_sites[stream % all_sites.size()];
      stream = SplitMix64(stream);
      const std::string spec =
          "p(0.3," + std::to_string(stream | 1) + ")*error(unavailable)";
      if (fault::Enable(site.name, spec).ok()) {
        armed.push_back(std::string(site.name) + ':' + spec);
      }
    }
    std::vector<Outcome> outcomes = RunWorkload(*fixture);
    fault::DisableAll();
    const size_t run_violations = Grade(&outcomes, baseline);
    violations += run_violations;
    ++total_runs;
    if (k > 0) json += ',';
    json += "{\"combo\":" + std::to_string(k) + ",\"armed\":[";
    for (size_t a = 0; a < armed.size(); ++a) {
      if (a > 0) json += ',';
      json += '"' + obs::JsonEscape(armed[a]) + '"';
    }
    json += "],\"pass\":" + std::string(run_violations == 0 ? "true"
                                                            : "false") +
            ",\"outcomes\":[";
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (i > 0) json += ',';
      json += OutcomeJson(outcomes[i]);
    }
    json += "]}";
  }
  json += ']';

  // Deterministic degradation-edge demonstrations.
  const std::vector<Outcome> edges = RunEdgeDemos(*fixture, baseline);
  json += ",\"edges\":[";
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) json += ',';
    json += OutcomeJson(edges[i]);
    total_runs += 1;
    if (!edges[i].pass) ++violations;
    std::fprintf(stderr, "edge %-22s %s (%s)\n", edges[i].query.c_str(),
                 edges[i].pass ? "pass" : "VIOLATION",
                 edges[i].detail.c_str());
  }
  json += ']';

  // Final determinism check: with everything disabled again, the workload
  // must still match the baseline byte for byte (no leaked fault state).
  {
    fault::DisableAll();
    std::vector<Outcome> final_run = RunWorkload(*fixture);
    bool identical = final_run.size() == baseline.size();
    for (size_t i = 0; identical && i < final_run.size(); ++i) {
      identical = final_run[i].kind == baseline[i].kind &&
                  final_run[i].detail == baseline[i].detail;
    }
    ++total_runs;
    if (!identical) {
      ++violations;
      std::fprintf(stderr, "final disabled run drifted from baseline\n");
    }
    json += ",\"final_disabled_run_identical\":" +
            std::string(identical ? "true" : "false");
  }

  const size_t sites_total =
      args.only_site.empty() ? all_sites.size() : 1;
  json += ",\"summary\":{\"runs\":" + std::to_string(total_runs) +
          ",\"violations\":" + std::to_string(violations) +
          ",\"sites_exercised\":" + std::to_string(sites_exercised) +
          ",\"sites_total\":" + std::to_string(sites_total) + '}';
  if (sites_exercised != sites_total) ++violations;

  if (!args.json_path.empty()) {
    std::FILE* out = std::fopen(args.json_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return kExitChaosFailure;
    }
    std::fprintf(out, "{%s}\n", json.c_str());
    std::fclose(out);
    std::fprintf(stderr, "report: %s\n", args.json_path.c_str());
  }
  std::fprintf(stderr, "chaos: %zu runs, %zu violation(s), %zu/%zu sites\n",
               total_runs, violations, sites_exercised, sites_total);
  return violations == 0 ? kExitOk : kExitChaosFailure;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ParseChaosArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return Usage(stderr);
  }
  if (args->help) return Usage(stdout);
  if (args->list) {
    for (const fault::SiteInfo& site : fault::AllSites()) {
      std::printf("%-32s %s%s\n", std::string(site.name).c_str(),
                  std::string(site.description).c_str(),
                  site.honors_error ? "" : " [delay-only]");
    }
    return kExitOk;
  }
  if (!args->only_site.empty() && !fault::IsKnownSite(args->only_site)) {
    std::fprintf(stderr, "unknown site '%s' (see --list)\n",
                 args->only_site.c_str());
    return kExitUsage;
  }
  if (args->service) return RunServiceMode(*args);
  return RunChaos(*args);
}
