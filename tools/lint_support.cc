#include "lint_support.h"

#include <algorithm>

namespace aqua::lint {
namespace {

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

/// Path scoping works on substrings rather than prefixes so the linter
/// behaves the same whether it was handed "src", "./src", or an absolute
/// path.
bool IsTestPath(std::string_view path) {
  return Contains(path, "tests/") || Contains(path, "_test.");
}
bool IsSourceOrToolPath(std::string_view path) {
  return (Contains(path, "src/") || Contains(path, "tools/")) &&
         !IsTestPath(path);
}
bool IsNumericCorePath(std::string_view path) {
  return Contains(path, "src/aqua/core/") || Contains(path, "src/aqua/prob/");
}
bool IsExecPath(std::string_view path) {
  return Contains(path, "src/aqua/exec/");
}

std::vector<std::string_view> SplitLines(std::string_view content) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start <= content.size()) {
    const size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// True when `line` (or the line above it) carries the escape comment for
/// `rule`: `// aqua-lint: allow(<rule>)`.
bool AllowedBy(std::string_view line, std::string_view rule) {
  const std::string tag = "aqua-lint: allow(" + std::string(rule) + ")";
  return Contains(line, tag);
}
bool Allowed(const std::vector<std::string_view>& lines, size_t index,
             std::string_view rule) {
  if (AllowedBy(lines[index], rule)) return true;
  return index > 0 && AllowedBy(lines[index - 1], rule);
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// True when the text immediately right of `pos` (skipping spaces and an
/// optional sign) starts a floating-point literal like `0.5` or `1e-9`.
bool FloatLiteralRightOf(std::string_view line, size_t pos) {
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos < line.size() && (line[pos] == '-' || line[pos] == '+')) ++pos;
  if (pos >= line.size() || !IsDigit(line[pos])) return false;
  while (pos < line.size() && IsDigit(line[pos])) ++pos;
  if (pos >= line.size()) return false;
  if (line[pos] == '.') return pos + 1 < line.size() && IsDigit(line[pos + 1]);
  return line[pos] == 'e' || line[pos] == 'E' || line[pos] == 'f';
}

/// True when the text immediately left of `pos` (skipping spaces) ends a
/// floating-point literal.
bool FloatLiteralLeftOf(std::string_view line, size_t pos) {
  size_t end = pos;
  while (end > 0 && line[end - 1] == ' ') --end;
  if (end == 0) return false;
  size_t begin = end;
  bool saw_digit = false;
  bool saw_point = false;
  while (begin > 0) {
    const char c = line[begin - 1];
    if (IsDigit(c)) {
      saw_digit = true;
    } else if (c == '.') {
      saw_point = true;
    } else if (c == 'e' || c == 'E' || c == 'f' || c == '-' || c == '+') {
      // inside an exponent / suffix; keep scanning
    } else {
      break;
    }
    --begin;
  }
  return saw_digit && saw_point;
}

/// Strips line comments and string/char literals so banned identifiers in
/// comments or messages don't trip the rules. Block comments are left
/// alone (the tree has none spanning code) — the escape-hatch comment is
/// matched against the raw line anyway.
std::string CodeOnly(std::string_view line) {
  std::string out;
  out.reserve(line.size());
  char quote = '\0';
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quote != '\0') {
      if (c == '\\') {
        ++i;
      } else if (c == quote) {
        quote = '\0';
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      continue;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    out.push_back(c);
  }
  return out;
}

/// Strips string/char literals but keeps comments — for rules that police
/// comment text (todo-issue), where a banned word inside a message string
/// is not debt.
std::string StripStrings(std::string_view line) {
  std::string out;
  out.reserve(line.size());
  char quote = '\0';
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quote != '\0') {
      if (c == '\\') {
        ++i;
      } else if (c == quote) {
        quote = '\0';
      }
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      continue;
    }
    out.push_back(c);
  }
  return out;
}

struct LineRuleContext {
  std::string_view path;
  const std::vector<std::string_view>& lines;
  std::vector<Finding>* findings;

  void Report(size_t index, std::string_view rule, std::string message) {
    if (Allowed(lines, index, rule)) return;
    findings->push_back(Finding{std::string(path), index + 1,
                                std::string(rule), std::move(message)});
  }
};

void CheckUncheckedResultValue(LineRuleContext& ctx) {
  if (!IsSourceOrToolPath(ctx.path)) return;
  constexpr std::string_view kRule = "unchecked-result-value";
  constexpr size_t kWindow = 10;  // lines of context that may hold the guard
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string code = CodeOnly(ctx.lines[i]);
    if (!Contains(code, ".value()") && !Contains(code, ").value()")) continue;
    bool guarded = false;
    const size_t first = i >= kWindow ? i - kWindow : 0;
    for (size_t j = first; j <= i && !guarded; ++j) {
      const std::string prior = CodeOnly(ctx.lines[j]);
      guarded = Contains(prior, ".ok()") || Contains(prior, "->ok()") ||
                Contains(prior, "AQUA_ASSIGN_OR_RETURN") ||
                Contains(prior, "ASSERT_TRUE") || Contains(prior, "ok(),");
    }
    if (!guarded) {
      ctx.Report(i, kRule,
                 "Result<T>::value() with no visible ok() guard; propagate "
                 "the Status (AQUA_ASSIGN_OR_RETURN) instead of asserting");
    }
  }
}

void CheckBannedRandom(LineRuleContext& ctx) {
  constexpr std::string_view kRule = "banned-random";
  static constexpr std::string_view kBanned[] = {
      "std::rand", "srand(", "time(nullptr)", "time(NULL)"};
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string code = CodeOnly(ctx.lines[i]);
    for (const std::string_view banned : kBanned) {
      if (Contains(code, banned)) {
        ctx.Report(i, kRule,
                   "'" + std::string(banned) +
                       "' is non-deterministic; use aqua::Rng / SplitMix64 "
                       "(aqua/common/random.h) with an explicit seed");
      }
    }
  }
}

void CheckRawThread(LineRuleContext& ctx) {
  if (!IsSourceOrToolPath(ctx.path) || IsExecPath(ctx.path)) return;
  constexpr std::string_view kRule = "raw-thread";
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string code = CodeOnly(ctx.lines[i]);
    size_t pos = 0;
    while ((pos = code.find("std::thread", pos)) != std::string::npos) {
      const size_t after = pos + std::string_view("std::thread").size();
      // `std::thread::id` and `std::this_thread` are observational, not
      // thread creation; only spawning bypasses the pool.
      if (after >= code.size() || code[after] != ':') {
        ctx.Report(i, kRule,
                   "raw std::thread bypasses the shared pool's budget "
                   "splitting and cancellation; use aqua::exec::ParallelFor "
                   "or ThreadPool");
        break;
      }
      pos = after;
    }
  }
}

void CheckFloatEquality(LineRuleContext& ctx) {
  if (!IsNumericCorePath(ctx.path) || IsTestPath(ctx.path)) return;
  constexpr std::string_view kRule = "float-equality";
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string code = CodeOnly(ctx.lines[i]);
    for (size_t pos = 0; pos + 1 < code.size(); ++pos) {
      const bool eq = code[pos] == '=' && code[pos + 1] == '=';
      const bool neq = code[pos] == '!' && code[pos + 1] == '=';
      if (!eq && !neq) continue;
      if (eq && pos > 0 && (code[pos - 1] == '<' || code[pos - 1] == '>' ||
                            code[pos - 1] == '!' || code[pos - 1] == '=')) {
        continue;
      }
      if (pos + 2 < code.size() && code[pos + 2] == '=') continue;
      if (FloatLiteralRightOf(code, pos + 2) ||
          FloatLiteralLeftOf(code, pos)) {
        ctx.Report(i, kRule,
                   "exact == / != against a floating-point literal in "
                   "numeric code; compare with an explicit tolerance or "
                   "annotate why exactness is intended");
        break;
      }
    }
  }
}

void CheckTodoIssue(LineRuleContext& ctx) {
  constexpr std::string_view kRule = "todo-issue";
  for (size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string line = StripStrings(ctx.lines[i]);
    size_t pos = line.find("TODO");
    while (pos != std::string::npos) {
      std::string_view rest = std::string_view(line).substr(pos + 4);
      bool tagged = false;
      if (rest.size() >= 3 && rest[0] == '(' && rest[1] == '#') {
        size_t d = 2;
        while (d < rest.size() && IsDigit(rest[d])) ++d;
        tagged = d > 2 && d < rest.size() && rest[d] == ')';
      }
      if (!tagged) {
        ctx.Report(i, kRule,
                   "TODO without an issue tag; write TODO(#<issue>) so the "
                   "debt is tracked");
        break;
      }
      pos = line.find("TODO", pos + 4);
    }
  }
}

}  // namespace

std::string Finding::ToString() const {
  std::string out = file;
  if (line > 0) out += ":" + std::to_string(line);
  out += ": [" + rule + "] " + message;
  return out;
}

const std::vector<Rule>& Rules() {
  static const std::vector<Rule> kRules = {
      {"unchecked-result-value", "src/, tools/ (not tests)",
       "Result<T>::value() must have a visible ok() guard nearby or use "
       "AQUA_ASSIGN_OR_RETURN; an unchecked value() on an error result "
       "aborts the process"},
      {"banned-random", "everywhere",
       "std::rand / srand / time(nullptr) are non-deterministic across "
       "machines; all randomness goes through aqua::Rng / SplitMix64 with "
       "an explicit seed so answers and tests are reproducible"},
      {"raw-thread", "src/, tools/ except src/aqua/exec/",
       "raw std::thread spawning bypasses the shared pool, budget "
       "splitting, and linked cancellation; use aqua::exec primitives"},
      {"float-equality", "src/aqua/core/, src/aqua/prob/",
       "== / != against a floating-point literal in numeric code is "
       "usually a tolerance bug; annotate deliberate exact comparisons "
       "with the allow comment"},
      {"todo-issue", "everywhere",
       "TODO comments must carry an issue tag, TODO(#<n>), so deferred "
       "work is tracked rather than forgotten"},
      {"test-reference", "src/aqua/ (cross-file)",
       "every src/aqua .cc must have its header referenced by at least one "
       "file under tests/; untested subsystems rot silently"},
      {"naked-failpoint", "src/ (cross-file)",
       "every AQUA_FAILPOINT site in the source must appear as a quoted "
       "literal in a file under tests/ (the chaos inventory test); an "
       "injection point nobody exercises suggests fault coverage that "
       "does not exist"},
  };
  return kRules;
}

std::vector<Finding> LintFile(std::string_view path,
                              std::string_view content) {
  std::vector<Finding> findings;
  if (Contains(path, "lint_fixtures")) return findings;
  const std::vector<std::string_view> lines = SplitLines(content);
  LineRuleContext ctx{path, lines, &findings};
  CheckUncheckedResultValue(ctx);
  CheckBannedRandom(ctx);
  CheckRawThread(ctx);
  CheckFloatEquality(ctx);
  CheckTodoIssue(ctx);
  return findings;
}

std::vector<FailpointSiteRef> ExtractFailpointSites(std::string_view path,
                                                    std::string_view content) {
  std::vector<FailpointSiteRef> sites;
  if (!Contains(path, "src/") || IsTestPath(path) ||
      Contains(path, "lint_fixtures")) {
    return sites;
  }
  const std::vector<std::string_view> lines = SplitLines(content);
  for (size_t i = 0; i < lines.size(); ++i) {
    if (Allowed(lines, i, "naked-failpoint")) continue;
    // Match on the raw line but only before any // comment, so the macro
    // examples in doc comments don't register as call sites. CodeOnly is
    // unusable here: it strips the string literal that holds the site.
    std::string_view line = lines[i];
    char quote = '\0';
    for (size_t c = 0; c + 1 < line.size(); ++c) {
      if (quote != '\0') {
        if (line[c] == '\\') {
          ++c;
        } else if (line[c] == quote) {
          quote = '\0';
        }
        continue;
      }
      if (line[c] == '"' || line[c] == '\'') {
        quote = line[c];
      } else if (line[c] == '/' && line[c + 1] == '/') {
        line = line.substr(0, c);
        break;
      }
    }
    size_t pos = 0;
    while ((pos = line.find("AQUA_FAILPOINT", pos)) != std::string_view::npos) {
      size_t after = pos + std::string_view("AQUA_FAILPOINT").size();
      constexpr std::string_view kStatusSuffix = "_STATUS";
      if (line.substr(after, kStatusSuffix.size()) == kStatusSuffix) {
        after += kStatusSuffix.size();
      }
      pos = after;
      // Only `("<literal>` counts: the macro definitions themselves and
      // any wrapper taking a variable are not site declarations.
      if (line.substr(after, 2) != "(\"") continue;
      const size_t begin = after + 2;
      const size_t end = line.find('"', begin);
      if (end == std::string_view::npos) continue;
      sites.push_back(FailpointSiteRef{
          std::string(path), i + 1, std::string(line.substr(begin, end - begin))});
    }
  }
  return sites;
}

std::vector<Finding> LintFailpointInventory(
    const std::vector<FailpointSiteRef>& sites,
    const std::vector<std::string>& test_contents) {
  std::vector<Finding> findings;
  for (const FailpointSiteRef& ref : sites) {
    const std::string needle = "\"" + ref.site + "\"";
    const bool referenced =
        std::any_of(test_contents.begin(), test_contents.end(),
                    [&](const std::string& content) {
                      return Contains(content, needle);
                    });
    if (!referenced) {
      findings.push_back(Finding{
          ref.file, ref.line, "naked-failpoint",
          "failpoint site " + needle +
              " appears in no file under tests/; add it to the chaos "
              "inventory test so aqua_chaos exercises it"});
    }
  }
  return findings;
}

std::vector<Finding> LintTestCoverage(
    const std::vector<std::string>& src_cc_paths,
    const std::vector<std::string>& test_contents) {
  std::vector<Finding> findings;
  for (const std::string& path : src_cc_paths) {
    const size_t at = path.find("src/aqua/");
    if (at == std::string::npos) continue;
    if (path.size() < 3 || path.compare(path.size() - 3, 3, ".cc") != 0) {
      continue;
    }
    // "src/aqua/core/engine.cc" -> the include spelling every test uses:
    // "aqua/core/engine.h".
    std::string header = path.substr(at + 4);
    header.replace(header.size() - 3, 3, ".h");
    const std::string needle = "\"" + header + "\"";
    const bool referenced =
        std::any_of(test_contents.begin(), test_contents.end(),
                    [&](const std::string& content) {
                      return Contains(content, needle);
                    });
    if (!referenced) {
      findings.push_back(Finding{
          path, 0, "test-reference",
          "no file under tests/ includes " + needle +
              "; add a test (or reference the header from an existing one)"});
    }
  }
  return findings;
}

}  // namespace aqua::lint
