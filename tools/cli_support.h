// Parsing and rendering support for aqua_cli, split out of the binary so
// the flag parser and the JSON emitters are unit-testable (see
// tests/tools/cli_support_test.cc).

#ifndef AQUA_TOOLS_CLI_SUPPORT_H_
#define AQUA_TOOLS_CLI_SUPPORT_H_

#include <string>
#include <vector>

#include "aqua/core/engine.h"
#include "aqua/storage/schema.h"

namespace aqua::cli {

/// How --metrics renders the registry after the query.
enum class MetricsFormat { kOff, kText, kJson };

struct CliOptions {
  /// --help: print usage to stdout and exit 0; required flags are waived.
  bool help = false;

  std::string data_path;
  std::string schema_spec;
  std::string mapping_path;
  std::string query;

  /// --failpoint=site:spec (repeatable), applied via fault::Enable before
  /// the query runs; a bad site or spec is a usage error.
  std::vector<std::string> failpoints;
  MappingSemantics mapping_semantics = MappingSemantics::kByTuple;
  AggregateSemantics aggregate_semantics = AggregateSemantics::kRange;
  size_t histogram_bins = 0;
  bool explain = false;

  /// --stats: append a human-readable QueryStats line per answer.
  bool stats = false;
  /// --stats-json: emit one JSON document (answer + stats) on stdout; the
  /// banner moves to stderr so stdout stays machine-parseable.
  bool stats_json = false;
  /// --trace <file>: collect phase spans and write a Chrome trace-event
  /// JSON file (viewable in about:tracing / Perfetto).
  std::string trace_path;
  /// --metrics text|json: dump the metrics registry to stderr after the
  /// query (stderr so it composes with --stats-json's pure-JSON stdout).
  MetricsFormat metrics = MetricsFormat::kOff;

  EngineOptions engine;
};

/// Parses the CLI argument vector (argv[1..]). Every value-taking flag
/// accepts both `--flag value` and `--flag=value`; boolean flags reject an
/// `=value`. Fails on unknown flags and missing required options.
Result<CliOptions> ParseCliArgs(const std::vector<std::string>& args);

/// argc/argv adapter for main().
Result<CliOptions> ParseCliArgs(int argc, char** argv);

/// Parses a "name:type,..." schema spec (types: int64, double, string,
/// date, plus the int/real/text aliases).
Result<Schema> ParseSchemaSpec(const std::string& spec);

/// Schema-stable JSON for one answer: semantics, active value member,
/// approximate/note, and the embedded QueryStats object.
std::string AnswerToJson(const AggregateAnswer& answer);

/// `{"groups":[{"group":...,"answer":{...}}...]}` element list used by the
/// grouped --stats-json output.
std::string GroupedToJson(const std::vector<GroupedAnswer>& groups);

}  // namespace aqua::cli

#endif  // AQUA_TOOLS_CLI_SUPPORT_H_
