// aqua_lint — the repo's project-specific linter.
//
// Enforces rules no off-the-shelf tool knows (see `aqua_lint --list-rules`
// or tools/lint_support.cc): unchecked Result<T>::value(), banned
// randomness sources, raw std::thread outside the exec runtime, exact
// float comparisons in numeric code, untracked to-do markers, test
// coverage, and failpoint sites missing from the chaos inventory test.
// A finding is suppressed by a `// aqua-lint: allow(<rule>)`
// comment on the offending line or the line above it.
//
// Usage:
//   aqua_lint --list-rules
//   aqua_lint <path>...        # files or directories; scans *.cc and *.h
//
// Exit status: 0 when clean, 1 on findings, 2 on usage/IO errors.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_support.h"

namespace {

namespace fs = std::filesystem;

bool IsLintableFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

/// Directories never worth descending into: build trees, VCS metadata, and
/// the lint self-test corpus (which violates rules on purpose).
bool IsSkippedDir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "build" || name == "lint_fixtures" ||
         (!name.empty() && name[0] == '.');
}

std::string NormalizePath(const fs::path& p) {
  std::string s = p.generic_string();
  while (s.rfind("./", 0) == 0) s.erase(0, 2);
  return s;
}

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

void CollectFiles(const fs::path& root, std::vector<fs::path>* files) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    if (IsLintableFile(root)) files->push_back(root);
    return;
  }
  fs::recursive_directory_iterator it(root, ec), end;
  if (ec) return;
  for (; it != end; it.increment(ec)) {
    if (ec) break;
    if (it->is_directory() && IsSkippedDir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && IsLintableFile(it->path())) {
      files->push_back(it->path());
    }
  }
}

int ListRules() {
  std::printf("aqua_lint enforces %zu rules:\n\n",
              aqua::lint::Rules().size());
  for (const aqua::lint::Rule& rule : aqua::lint::Rules()) {
    std::printf("  %-24s  scope: %s\n", rule.name.c_str(),
                rule.scope.c_str());
    std::printf("      %s\n\n", rule.description.c_str());
  }
  std::printf(
      "Suppress a finding with `// aqua-lint: allow(<rule>)` on the "
      "offending\nline or the line directly above it.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return ListRules();
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: aqua_lint [--list-rules] <path>...\n");
      return 0;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "aqua_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: aqua_lint [--list-rules] <path>...\n");
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (!fs::exists(p, ec)) {
      std::fprintf(stderr, "aqua_lint: no such path '%s'\n", p.c_str());
      return 2;
    }
    CollectFiles(p, &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<aqua::lint::Finding> findings;
  std::vector<std::string> src_cc_paths;
  std::vector<aqua::lint::FailpointSiteRef> failpoint_sites;
  std::vector<std::string> test_contents;
  bool scanned_tests_dir = false;
  for (const fs::path& file : files) {
    const std::string rel = NormalizePath(file);
    std::string content;
    if (!ReadFile(file, &content)) {
      std::fprintf(stderr, "aqua_lint: cannot read '%s'\n", rel.c_str());
      return 2;
    }
    std::vector<aqua::lint::Finding> file_findings =
        aqua::lint::LintFile(rel, content);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
    if (rel.find("src/aqua/") != std::string::npos &&
        rel.size() > 3 && rel.compare(rel.size() - 3, 3, ".cc") == 0) {
      src_cc_paths.push_back(rel);
    }
    std::vector<aqua::lint::FailpointSiteRef> file_sites =
        aqua::lint::ExtractFailpointSites(rel, content);
    failpoint_sites.insert(failpoint_sites.end(),
                           std::make_move_iterator(file_sites.begin()),
                           std::make_move_iterator(file_sites.end()));
    if (rel.find("tests/") != std::string::npos) {
      scanned_tests_dir = true;
      test_contents.push_back(std::move(content));
    }
  }
  // The cross-file rules only make sense when the run can actually see the
  // tests; linting a single source file must not report the whole tree as
  // untested.
  if (!src_cc_paths.empty() && scanned_tests_dir) {
    std::vector<aqua::lint::Finding> coverage =
        aqua::lint::LintTestCoverage(src_cc_paths, test_contents);
    findings.insert(findings.end(),
                    std::make_move_iterator(coverage.begin()),
                    std::make_move_iterator(coverage.end()));
  }
  if (!failpoint_sites.empty() && scanned_tests_dir) {
    std::vector<aqua::lint::Finding> naked =
        aqua::lint::LintFailpointInventory(failpoint_sites, test_contents);
    findings.insert(findings.end(),
                    std::make_move_iterator(naked.begin()),
                    std::make_move_iterator(naked.end()));
  }

  for (const aqua::lint::Finding& f : findings) {
    std::printf("%s\n", f.ToString().c_str());
  }
  if (findings.empty()) {
    std::printf("aqua_lint: %zu files clean\n", files.size());
    return 0;
  }
  std::printf("aqua_lint: %zu finding(s) in %zu files\n", findings.size(),
              files.size());
  return 1;
}
