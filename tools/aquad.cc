// aquad — the always-on aggregate-query service.
//
// Loads one source table and one p-mapping at startup, then serves:
//
//   POST /query    {"query":"SELECT COUNT(*) FROM T", "semantics":"by-tuple",
//                   "answer":"range", "deadline_ms":500, "max_steps":0}
//   GET  /metrics  Prometheus text exposition of the metrics registry
//   GET  /statusz  admission state, watermarks, pool queue depth (JSON)
//   GET  /healthz  liveness probe
//
// Admission control: each request's budget is clamped by the server caps
// and fed through the admission controller — under the soft watermark it
// runs exactly; between soft and hard watermarks it is shed to the
// Monte-Carlo sampler and flagged approximate; at the hard watermark it
// gets a well-formed 429. SIGTERM/SIGINT starts a graceful drain: no new
// admissions, in-flight requests finish (or are cancelled at the drain
// deadline), metrics are flushed to stderr.
//
// Exit codes: 0 clean drain; 2 usage error; 3 drain deadline exceeded
// (in-flight work was cancelled); 4 startup failure (data, mapping, bind).

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "aqua/common/failpoint.h"
#include "aqua/exec/thread_pool.h"
#include "aqua/mapping/serialize.h"
#include "aqua/obs/metrics.h"
#include "aqua/server/server.h"
#include "aqua/server/service.h"
#include "aqua/server/signal.h"
#include "aqua/storage/csv.h"
#include "cli_support.h"

namespace aqua {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitDrainDeadline = 3;
constexpr int kExitStartup = 4;

struct DaemonOptions {
  bool help = false;
  std::string data_path;
  std::string schema_spec;
  std::string mapping_path;
  std::vector<std::string> failpoints;
  int port = 8080;
  int threads = 0;
  int shards = 1;
  int64_t drain_ms = 5000;
  int io_timeout_ms = 5000;
  size_t queue_limit = 0;
  server::ServiceCaps caps;
  server::AdmissionOptions admission;
};

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s --data FILE --schema SPEC --mapping FILE [options]\n"
      "\n"
      "Serves aggregate queries under uncertain schema mappings over HTTP.\n"
      "\n"
      "  --port N                 listen port (default 8080; 0 = ephemeral)\n"
      "  --threads N              engine worker threads (default: hardware)\n"
      "  --shards N               in-process fault domains per by-tuple\n"
      "                           query (default 1 = off)\n"
      "  --default-deadline-ms N  deadline when the request names none "
      "(default 2000)\n"
      "  --max-deadline-ms N      cap on requested deadlines (default 30000;"
      " 0 = uncapped)\n"
      "  --max-steps N            cap on requested step budgets (0 = none)\n"
      "  --max-bytes N            cap on requested byte budgets (0 = none)\n"
      "  --soft-watermark N       in-flight count above which requests are\n"
      "                           shed to sampling (default 48)\n"
      "  --hard-watermark N       in-flight count at which requests get a\n"
      "                           well-formed 429 (default 64)\n"
      "  --queue-limit N          cap on the shared pool's task queue\n"
      "                           (0 = unbounded)\n"
      "  --drain-ms N             graceful-drain deadline on SIGTERM/SIGINT\n"
      "                           (default 5000)\n"
      "  --io-timeout-ms N        per-socket read/write timeout "
      "(default 5000)\n"
      "  --failpoint SITE:SPEC    arm a failpoint (repeatable)\n"
      "\n"
      "Exit codes: 0 clean drain; 2 usage; 3 drain deadline exceeded;\n"
      "4 startup failure.\n",
      argv0);
}

Result<DaemonOptions> ParseDaemonArgs(int argc, char** argv) {
  DaemonOptions o;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (size_t i = 0; i < args.size(); ++i) {
    std::string name = args[i];
    std::string inline_value;
    bool has_inline = false;
    if (name.rfind("--", 0) == 0) {
      const size_t eq = name.find('=');
      if (eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        has_inline = true;
        name.resize(eq);
      }
    }
    auto next = [&]() -> Result<std::string> {
      if (has_inline) return inline_value;
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("missing value for " + name);
      }
      return args[++i];
    };
    auto next_int = [&](int64_t min_value) -> Result<int64_t> {
      AQUA_ASSIGN_OR_RETURN(const std::string v, next());
      try {
        size_t pos = 0;
        const long long parsed = std::stoll(v, &pos);
        if (pos != v.size() || parsed < min_value) {
          throw std::invalid_argument(v);
        }
        return static_cast<int64_t>(parsed);
      } catch (const std::exception&) {
        return Status::InvalidArgument(name + " expects an integer >= " +
                                       std::to_string(min_value) + ", got '" +
                                       v + "'");
      }
    };
    if (name == "--help" || name == "-h") {
      o.help = true;
      return o;
    } else if (name == "--data") {
      AQUA_ASSIGN_OR_RETURN(o.data_path, next());
    } else if (name == "--schema") {
      AQUA_ASSIGN_OR_RETURN(o.schema_spec, next());
    } else if (name == "--mapping") {
      AQUA_ASSIGN_OR_RETURN(o.mapping_path, next());
    } else if (name == "--port") {
      AQUA_ASSIGN_OR_RETURN(const int64_t v, next_int(0));
      if (v > 65535) return Status::InvalidArgument("--port out of range");
      o.port = static_cast<int>(v);
    } else if (name == "--threads") {
      AQUA_ASSIGN_OR_RETURN(const int64_t v, next_int(0));
      o.threads = static_cast<int>(v);
    } else if (name == "--shards") {
      AQUA_ASSIGN_OR_RETURN(const int64_t v, next_int(1));
      o.shards = static_cast<int>(v);
    } else if (name == "--default-deadline-ms") {
      AQUA_ASSIGN_OR_RETURN(o.caps.default_deadline_ms, next_int(1));
    } else if (name == "--max-deadline-ms") {
      AQUA_ASSIGN_OR_RETURN(o.caps.max_deadline_ms, next_int(0));
    } else if (name == "--max-steps") {
      AQUA_ASSIGN_OR_RETURN(const int64_t v, next_int(0));
      o.caps.max_steps = static_cast<uint64_t>(v);
    } else if (name == "--max-bytes") {
      AQUA_ASSIGN_OR_RETURN(const int64_t v, next_int(0));
      o.caps.max_bytes = static_cast<uint64_t>(v);
    } else if (name == "--soft-watermark") {
      AQUA_ASSIGN_OR_RETURN(const int64_t v, next_int(1));
      o.admission.soft_watermark = static_cast<int>(v);
    } else if (name == "--hard-watermark") {
      AQUA_ASSIGN_OR_RETURN(const int64_t v, next_int(1));
      o.admission.hard_watermark = static_cast<int>(v);
    } else if (name == "--queue-limit") {
      AQUA_ASSIGN_OR_RETURN(const int64_t v, next_int(0));
      o.queue_limit = static_cast<size_t>(v);
    } else if (name == "--drain-ms") {
      AQUA_ASSIGN_OR_RETURN(o.drain_ms, next_int(0));
    } else if (name == "--io-timeout-ms") {
      AQUA_ASSIGN_OR_RETURN(const int64_t v, next_int(1));
      o.io_timeout_ms = static_cast<int>(v);
    } else if (name == "--failpoint") {
      AQUA_ASSIGN_OR_RETURN(const std::string v, next());
      o.failpoints.push_back(v);
    } else {
      return Status::InvalidArgument("unknown flag '" + name + "'");
    }
  }
  if (o.data_path.empty() || o.schema_spec.empty() ||
      o.mapping_path.empty()) {
    return Status::InvalidArgument(
        "--data, --schema and --mapping are required");
  }
  if (o.admission.hard_watermark < o.admission.soft_watermark) {
    return Status::InvalidArgument(
        "--hard-watermark must be >= --soft-watermark");
  }
  return o;
}

int RunDaemon(const DaemonOptions& options) {
  const auto schema = cli::ParseSchemaSpec(options.schema_spec);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    return kExitUsage;
  }
  const auto table = Csv::ReadFile(options.data_path, *schema);
  if (!table.ok()) {
    std::fprintf(stderr, "data: %s\n", table.status().ToString().c_str());
    return kExitStartup;
  }
  const auto schema_mapping =
      PMappingText::ReadSchemaFile(options.mapping_path);
  if (!schema_mapping.ok()) {
    std::fprintf(stderr, "mapping: %s\n",
                 schema_mapping.status().ToString().c_str());
    return kExitStartup;
  }
  if (schema_mapping->size() != 1) {
    std::fprintf(stderr,
                 "mapping: expected exactly one pmapping block, got %zu\n",
                 schema_mapping->size());
    return kExitStartup;
  }

  if (options.queue_limit > 0) {
    exec::ThreadPool::Shared().set_queue_limit(options.queue_limit);
  }
  server::QueryServiceOptions service_options;
  service_options.caps = options.caps;
  service_options.admission = options.admission;
  service_options.engine.threads = options.threads;
  service_options.engine.shards = options.shards;
  server::QueryService service(*table, schema_mapping->mapping(0),
                               service_options);
  server::HttpServerOptions http_options;
  http_options.port = options.port;
  http_options.io_timeout_ms = options.io_timeout_ms;
  server::HttpServer http(&service, http_options);
  if (const Status started = http.Start(); !started.ok()) {
    std::fprintf(stderr, "startup: %s\n", started.ToString().c_str());
    return kExitStartup;
  }

  server::InstallDrainHandlers();
  std::fprintf(stderr,
               "aquad listening on %d (%zu rows, %zu candidate mappings; "
               "watermarks soft=%d hard=%d)\n",
               http.port(), table->num_rows(), schema_mapping->mapping(0).size(),
               options.admission.soft_watermark,
               options.admission.hard_watermark);
  std::fflush(stderr);

  while (!server::DrainRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "drain: signal received, stopping admission\n");
  const Status drained = http.Shutdown(options.drain_ms);
  // Flush the final metrics snapshot so a scrape-less deployment still
  // gets the service's lifetime counters in its logs.
  const std::string metrics =
      obs::MetricsRegistry::Default().RenderPrometheusText();
  std::fprintf(stderr, "%s", metrics.c_str());
  if (!drained.ok()) {
    std::fprintf(stderr, "drain: %s\n", drained.ToString().c_str());
    return kExitDrainDeadline;
  }
  std::fprintf(stderr, "drain: clean (all in-flight requests answered)\n");
  return kExitOk;
}

int DaemonMain(int argc, char** argv) {
  const auto options = ParseDaemonArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    PrintUsage(stderr, argv[0]);
    return kExitUsage;
  }
  if (options->help) {
    PrintUsage(stdout, argv[0]);
    return kExitOk;
  }
  const Status env_faults = fault::ConfigureFromEnv();
  if (!env_faults.ok()) {
    std::fprintf(stderr, "AQUA_FAILPOINTS: %s\n",
                 env_faults.ToString().c_str());
    return kExitUsage;
  }
  for (const std::string& fp : options->failpoints) {
    const size_t colon = fp.find(':');
    const Status armed =
        fault::Enable(fp.substr(0, colon),
                      colon == std::string::npos ? "" : fp.substr(colon + 1));
    if (!armed.ok()) {
      std::fprintf(stderr, "--failpoint=%s: %s\n", fp.c_str(),
                   armed.ToString().c_str());
      return kExitUsage;
    }
  }
  return RunDaemon(*options);
}

}  // namespace
}  // namespace aqua

int main(int argc, char** argv) { return aqua::DaemonMain(argc, argv); }
