#ifndef AQUA_TOOLS_LINT_SUPPORT_H_
#define AQUA_TOOLS_LINT_SUPPORT_H_

#include <string>
#include <string_view>
#include <vector>

namespace aqua::lint {

/// One lint rule: the name used in findings and in the
/// `// aqua-lint: allow(<name>)` escape comment, where it applies, and why
/// it exists.
struct Rule {
  std::string name;
  std::string scope;        // human-readable path scope, e.g. "src/, tools/"
  std::string description;  // what the rule enforces and why
};

/// One violation: `file:line: [rule] message`.
struct Finding {
  std::string file;
  size_t line = 0;  // 1-based; 0 for whole-file findings
  std::string rule;
  std::string message;

  std::string ToString() const;
};

/// The full rule table, in the order `--list-rules` prints it.
const std::vector<Rule>& Rules();

/// Runs every per-line rule applicable to `path` over `content`. `path`
/// is the repo-relative path ("src/aqua/core/engine.cc"); it decides which
/// rules apply. A line whose own text or whose immediately preceding line
/// contains `aqua-lint: allow(<rule>)` is exempt from `<rule>`. Files
/// under a `lint_fixtures/` directory are skipped entirely (they are the
/// lint self-test corpus and violate rules on purpose).
std::vector<Finding> LintFile(std::string_view path, std::string_view content);

/// Cross-file rule `test-reference`: every implementation file under
/// `src/aqua/` must have its header referenced by at least one file under
/// `tests/` — untested subsystems rot silently. `src_cc_paths` are the
/// repo-relative `.cc` paths; `test_contents` the contents of every
/// scanned test file.
std::vector<Finding> LintTestCoverage(
    const std::vector<std::string>& src_cc_paths,
    const std::vector<std::string>& test_contents);

/// One AQUA_FAILPOINT / AQUA_FAILPOINT_STATUS call site found in source.
struct FailpointSiteRef {
  std::string file;
  size_t line = 0;  // 1-based
  std::string site;
};

/// Extracts every failpoint macro invocation with a string-literal site
/// name from `content` (files under `src/`; comments and the allow-comment
/// escape are honoured). Used by the `naked-failpoint` rule and by the
/// chaos inventory test, so the linter and the test agree on what counts
/// as a site.
std::vector<FailpointSiteRef> ExtractFailpointSites(std::string_view path,
                                                    std::string_view content);

/// Cross-file rule `naked-failpoint`: every failpoint site wired into the
/// source must appear as a quoted literal in at least one file under
/// `tests/` (the chaos inventory test) — an injection point nobody
/// exercises is worse than none, because it suggests coverage that does
/// not exist.
std::vector<Finding> LintFailpointInventory(
    const std::vector<FailpointSiteRef>& sites,
    const std::vector<std::string>& test_contents);

}  // namespace aqua::lint

#endif  // AQUA_TOOLS_LINT_SUPPORT_H_
