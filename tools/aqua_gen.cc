// aqua_gen — emit a simulated workload as a CSV file plus a matching
// p-mapping text file, ready for aqua_cli.
//
//   aqua_gen --workload ebay|realestate|employees|synthetic
//            --out-data <csv> --out-mapping <pmapping.txt>
//            [--rows N] [--mappings L] [--seed S]
//
// For `synthetic`, --rows is the tuple count and --mappings the number of
// candidate mappings; the other workloads use --rows as their natural size
// knob (auctions / properties / employees).

#include <cstdio>
#include <fstream>
#include <string>

#include "aqua/mapping/serialize.h"
#include "aqua/storage/csv.h"
#include "aqua/workload/ebay.h"
#include "aqua/workload/employees.h"
#include "aqua/workload/real_estate.h"
#include "aqua/workload/synthetic.h"

namespace {

using namespace aqua;

struct GenOptions {
  std::string workload;
  std::string out_data;
  std::string out_mapping;
  size_t rows = 1000;
  size_t mappings = 2;
  uint64_t seed = 42;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --workload ebay|realestate|employees|synthetic "
               "--out-data <csv> --out-mapping <txt> [--rows N] "
               "[--mappings L] [--seed S]\n",
               argv0);
  return 2;
}

Result<GenOptions> ParseArgs(int argc, char** argv) {
  GenOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--workload") {
      AQUA_ASSIGN_OR_RETURN(o.workload, next());
    } else if (arg == "--out-data") {
      AQUA_ASSIGN_OR_RETURN(o.out_data, next());
    } else if (arg == "--out-mapping") {
      AQUA_ASSIGN_OR_RETURN(o.out_mapping, next());
    } else if (arg == "--rows") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      o.rows = static_cast<size_t>(std::stoul(v));
    } else if (arg == "--mappings") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      o.mappings = static_cast<size_t>(std::stoul(v));
    } else if (arg == "--seed") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      o.seed = std::stoull(v);
    } else {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    }
  }
  if (o.workload.empty() || o.out_data.empty() || o.out_mapping.empty()) {
    return Status::InvalidArgument(
        "--workload, --out-data, and --out-mapping are required");
  }
  return o;
}

struct Generated {
  Table table;
  PMapping pmapping;
  std::string hint;  // example query for the banner
};

Result<Generated> Generate(const GenOptions& o) {
  Rng rng(o.seed);
  if (o.workload == "ebay") {
    EbayOptions opts;
    opts.num_auctions = o.rows;
    opts.seed = o.seed;
    AQUA_ASSIGN_OR_RETURN(Table t, GenerateEbayTable(opts, rng));
    AQUA_ASSIGN_OR_RETURN(PMapping pm, MakeEbayPMapping());
    return Generated{std::move(t), std::move(pm),
                     "SELECT MAX(DISTINCT price) FROM T2 GROUP BY auctionId"};
  }
  if (o.workload == "realestate") {
    RealEstateOptions opts;
    opts.num_properties = o.rows;
    opts.seed = o.seed;
    AQUA_ASSIGN_OR_RETURN(Table t, GenerateRealEstateTable(opts, rng));
    AQUA_ASSIGN_OR_RETURN(PMapping pm, MakeRealEstatePMapping());
    return Generated{std::move(t), std::move(pm),
                     "SELECT COUNT(*) FROM T1 WHERE date < '2008-1-20'"};
  }
  if (o.workload == "employees") {
    EmployeesOptions opts;
    opts.num_employees = o.rows;
    opts.seed = o.seed;
    AQUA_ASSIGN_OR_RETURN(Table t, GenerateEmployeesTable(opts, rng));
    AQUA_ASSIGN_OR_RETURN(PMapping pm, MakeEmployeesPMapping());
    return Generated{std::move(t), std::move(pm),
                     "SELECT AVG(salary) FROM employees"};
  }
  if (o.workload == "synthetic") {
    SyntheticOptions opts;
    opts.num_tuples = o.rows;
    opts.num_mappings = o.mappings;
    opts.num_attributes = std::max<size_t>(o.mappings, 20);
    opts.seed = o.seed;
    AQUA_ASSIGN_OR_RETURN(SyntheticWorkload w,
                          GenerateSyntheticWorkload(opts, rng));
    return Generated{std::move(w.table), std::move(w.pmapping),
                     "SELECT SUM(value) FROM T WHERE value < 750"};
  }
  return Status::InvalidArgument("unknown workload '" + o.workload + "'");
}

std::string SchemaSpec(const Schema& schema) {
  std::string out;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out += ',';
    out += schema.attribute(i).name;
    out += ':';
    out += ValueTypeToString(schema.attribute(i).type);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return Usage(argv[0]);
  }
  const auto generated = Generate(*options);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  const Status csv = Csv::WriteFile(generated->table, options->out_data);
  if (!csv.ok()) {
    std::fprintf(stderr, "%s\n", csv.ToString().c_str());
    return 1;
  }
  std::ofstream mapping_out(options->out_mapping);
  if (!mapping_out) {
    std::fprintf(stderr, "cannot open '%s'\n", options->out_mapping.c_str());
    return 1;
  }
  mapping_out << PMappingText::Format(generated->pmapping);
  mapping_out.close();

  std::printf("wrote %zu rows to %s\n", generated->table.num_rows(),
              options->out_data.c_str());
  std::printf("wrote %zu-candidate p-mapping to %s\n",
              generated->pmapping.size(), options->out_mapping.c_str());
  std::printf("try:\n  aqua_cli --data %s \\\n"
              "           --schema \"%s\" \\\n"
              "           --mapping %s \\\n"
              "           --query \"%s\"\n",
              options->out_data.c_str(),
              SchemaSpec(generated->table.schema()).c_str(),
              options->out_mapping.c_str(), generated->hint.c_str());
  return 0;
}
