#include "cli_support.h"

#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "aqua/common/string_util.h"
#include "aqua/obs/json.h"

namespace aqua::cli {
namespace {

Result<int64_t> ParseInt64(const std::string& flag, const std::string& v) {
  try {
    size_t pos = 0;
    const int64_t parsed = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return parsed;
  } catch (const std::exception&) {
    return Status::InvalidArgument(flag + " expects an integer, got '" + v +
                                   "'");
  }
}

Result<uint64_t> ParseUint64(const std::string& flag, const std::string& v) {
  try {
    size_t pos = 0;
    const uint64_t parsed = std::stoull(v, &pos);
    if (pos != v.size() || (!v.empty() && v[0] == '-')) {
      throw std::invalid_argument(v);
    }
    return parsed;
  } catch (const std::exception&) {
    return Status::InvalidArgument(flag + " expects a non-negative integer, "
                                   "got '" + v + "'");
  }
}

/// JSON number rendering that round-trips doubles and never emits the
/// non-JSON tokens inf/nan (those become null).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Result<CliOptions> ParseCliArgs(const std::vector<std::string>& args) {
  CliOptions o;
  for (size_t i = 0; i < args.size(); ++i) {
    // Uniform `--flag=value` support: split once here so every flag below
    // accepts both spellings.
    std::string name = args[i];
    std::optional<std::string> inline_value;
    if (StartsWith(name, "--")) {
      const size_t eq = name.find('=');
      if (eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        name.resize(eq);
      }
    }
    auto next = [&]() -> Result<std::string> {
      if (inline_value.has_value()) return *inline_value;
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("missing value for " + name);
      }
      return args[++i];
    };
    auto boolean = [&]() -> Status {
      if (inline_value.has_value()) {
        return Status::InvalidArgument(name + " takes no value");
      }
      return Status::OK();
    };
    if (name == "--help" || name == "-h") {
      o.help = true;
      return o;  // everything else is ignored; required flags are waived
    } else if (name == "--data") {
      AQUA_ASSIGN_OR_RETURN(o.data_path, next());
    } else if (name == "--schema") {
      AQUA_ASSIGN_OR_RETURN(o.schema_spec, next());
    } else if (name == "--mapping") {
      AQUA_ASSIGN_OR_RETURN(o.mapping_path, next());
    } else if (name == "--query") {
      AQUA_ASSIGN_OR_RETURN(o.query, next());
    } else if (name == "--semantics") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "by-table") {
        o.mapping_semantics = MappingSemantics::kByTable;
      } else if (v == "by-tuple") {
        o.mapping_semantics = MappingSemantics::kByTuple;
      } else {
        return Status::InvalidArgument("unknown --semantics '" + v + "'");
      }
    } else if (name == "--answer") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "range") {
        o.aggregate_semantics = AggregateSemantics::kRange;
      } else if (v == "distribution") {
        o.aggregate_semantics = AggregateSemantics::kDistribution;
      } else if (v == "expected") {
        o.aggregate_semantics = AggregateSemantics::kExpectedValue;
      } else {
        return Status::InvalidArgument("unknown --answer '" + v + "'");
      }
    } else if (name == "--histogram") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      AQUA_ASSIGN_OR_RETURN(uint64_t bins, ParseUint64(name, v));
      o.histogram_bins = static_cast<size_t>(bins);
    } else if (name == "--explain") {
      AQUA_RETURN_NOT_OK(boolean());
      o.explain = true;
    } else if (name == "--stats") {
      AQUA_RETURN_NOT_OK(boolean());
      o.stats = true;
    } else if (name == "--stats-json") {
      AQUA_RETURN_NOT_OK(boolean());
      o.stats_json = true;
    } else if (name == "--trace") {
      AQUA_ASSIGN_OR_RETURN(o.trace_path, next());
    } else if (name == "--metrics") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "text") {
        o.metrics = MetricsFormat::kText;
      } else if (v == "json") {
        o.metrics = MetricsFormat::kJson;
      } else {
        return Status::InvalidArgument("unknown --metrics '" + v +
                                       "' (expected text|json)");
      }
    } else if (name == "--timeout-ms") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      AQUA_ASSIGN_OR_RETURN(o.engine.limits.timeout_ms, ParseInt64(name, v));
      if (o.engine.limits.timeout_ms <= 0) {
        return Status::InvalidArgument("--timeout-ms must be positive");
      }
    } else if (name == "--max-sequences") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      AQUA_ASSIGN_OR_RETURN(o.engine.naive.max_sequences,
                            ParseUint64(name, v));
    } else if (name == "--threads") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      AQUA_ASSIGN_OR_RETURN(const int64_t threads, ParseInt64(name, v));
      if (threads < 0) {
        return Status::InvalidArgument(
            "--threads must be >= 0 (0 = hardware concurrency)");
      }
      o.engine.threads = static_cast<int>(threads);
    } else if (name == "--shards") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      AQUA_ASSIGN_OR_RETURN(const int64_t shards, ParseInt64(name, v));
      if (shards < 1) {
        return Status::InvalidArgument("--shards must be >= 1 (1 = off)");
      }
      o.engine.shards = static_cast<int>(shards);
    } else if (name == "--failpoint") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      if (v.find(':') == std::string::npos) {
        return Status::InvalidArgument("--failpoint expects site:spec, got '" +
                                       v + "'");
      }
      o.failpoints.push_back(std::move(v));
    } else if (name == "--sampler-seed") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      AQUA_ASSIGN_OR_RETURN(o.engine.degrade_sampler.seed,
                            ParseUint64(name, v));
    } else if (name == "--degrade") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "off") {
        o.engine.degrade = DegradePolicy::kOff;
      } else if (v == "sample") {
        o.engine.degrade = DegradePolicy::kSample;
      } else {
        return Status::InvalidArgument("unknown --degrade '" + v +
                                       "' (expected off|sample)");
      }
    } else {
      return Status::InvalidArgument("unknown flag '" + args[i] + "'");
    }
  }
  if (o.data_path.empty() || o.schema_spec.empty() ||
      o.mapping_path.empty() || o.query.empty()) {
    return Status::InvalidArgument(
        "--data, --schema, --mapping, and --query are all required");
  }
  return o;
}

Result<CliOptions> ParseCliArgs(int argc, char** argv) {
  return ParseCliArgs(std::vector<std::string>(argv + 1, argv + argc));
}

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Attribute> attrs;
  for (std::string_view item : Split(spec, ',')) {
    item = Trim(item);
    if (item.empty()) continue;
    const size_t colon = item.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("schema item '" + std::string(item) +
                                     "' is not name:type");
    }
    const std::string name(Trim(item.substr(0, colon)));
    const std::string type = ToLower(Trim(item.substr(colon + 1)));
    ValueType vt;
    if (type == "int64" || type == "int") {
      vt = ValueType::kInt64;
    } else if (type == "double" || type == "real") {
      vt = ValueType::kDouble;
    } else if (type == "string" || type == "text") {
      vt = ValueType::kString;
    } else if (type == "date") {
      vt = ValueType::kDate;
    } else {
      return Status::InvalidArgument("unknown type '" + type + "'");
    }
    attrs.push_back(Attribute{name, vt});
  }
  return Schema::Make(std::move(attrs));
}

std::string AnswerToJson(const AggregateAnswer& answer) {
  std::string out = "{";
  out += obs::JsonString("semantics",
                         AggregateSemanticsToString(answer.semantics));
  switch (answer.semantics) {
    case AggregateSemantics::kRange:
      out += ",\"range\":{\"low\":" + JsonNumber(answer.range.low) +
             ",\"high\":" + JsonNumber(answer.range.high) + '}';
      break;
    case AggregateSemantics::kDistribution: {
      out += ",\"distribution\":[";
      bool first = true;
      for (const Distribution::Entry& e : answer.distribution.entries()) {
        if (!first) out += ',';
        first = false;
        out += '[' + JsonNumber(e.outcome) + ',' + JsonNumber(e.prob) + ']';
      }
      out += ']';
      break;
    }
    case AggregateSemantics::kExpectedValue:
      out += ",\"expected\":" + JsonNumber(answer.expected_value);
      break;
  }
  out += std::string(",\"approximate\":") +
         (answer.approximate ? "true" : "false");
  out += ',' + obs::JsonString("note", answer.note);
  out += ",\"stats\":" + answer.stats.ToJson();
  out += '}';
  return out;
}

std::string GroupedToJson(const std::vector<GroupedAnswer>& groups) {
  std::string out = "[";
  for (size_t i = 0; i < groups.size(); ++i) {
    if (i > 0) out += ',';
    out += "{" + obs::JsonString("group", groups[i].group.ToString()) +
           ",\"answer\":" + AnswerToJson(groups[i].answer) + '}';
  }
  out += ']';
  return out;
}

}  // namespace aqua::cli
