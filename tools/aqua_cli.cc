// aqua_cli — run an aggregate query over a CSV source under an uncertain
// schema mapping, from the command line.
//
//   aqua_cli --data bids.csv
//            --schema "transactionID:int64,auction:int64,time:double,
//                      bid:double,currentPrice:double"
//            --mapping matcher_output.pmapping
//            --query "SELECT SUM(price) FROM T2 WHERE auctionId = 34"
//            [--semantics by-tuple] [--answer range|distribution|expected]
//            [--histogram N] [--explain]
//            [--timeout-ms N] [--max-sequences N] [--degrade off|sample]
//            [--stats] [--stats-json] [--trace <file>] [--metrics text|json]
//            [--failpoint site:spec]... [--sampler-seed N]
//
// Every value-taking flag also accepts the `--flag=value` spelling.
//
// Exit codes: 0 = answered; 1 = runtime/query error (bad data file,
// malformed mapping, failed query); 2 = usage error (unknown flag, bad
// flag value, bad --schema spec, bad --failpoint site/spec).
//
// Observability: --stats appends a human-readable per-query stats line;
// --stats-json replaces stdout with one JSON document (answer + stats) and
// moves the banner to stderr; --trace writes a Chrome trace-event file of
// the phase spans; --metrics dumps the metrics registry to stderr.
//
// The mapping file uses the PMappingText format (see
// src/aqua/mapping/serialize.h); the query's FROM relation must be the
// mapping's target relation.

#include <cstdio>
#include <string>

#include "aqua/common/failpoint.h"
#include "aqua/mapping/serialize.h"
#include "aqua/obs/json.h"
#include "aqua/obs/metrics.h"
#include "aqua/obs/trace.h"
#include "aqua/query/parser.h"
#include "aqua/storage/csv.h"
#include "cli_support.h"

namespace {

using namespace aqua;
using cli::CliOptions;

// Exit codes, documented in --help: usage mistakes are distinguishable
// from runtime failures so scripts can tell "fix the invocation" from
// "fix the data/query".
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

void PrintUsage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s --data <csv> --schema \"name:type,...\" --mapping "
      "<pmapping.txt> --query \"SELECT ...\"\n"
      "          [--semantics by-table|by-tuple]\n"
      "          [--answer range|distribution|expected]\n"
      "          [--histogram <bins>] [--explain]\n"
      "          [--timeout-ms <ms>] [--max-sequences <n>]\n"
      "          [--degrade off|sample] [--sampler-seed <n>]\n"
      "          [--threads <n>] [--shards <n>]\n"
      "          [--stats] [--stats-json] [--trace <file>]\n"
      "          [--metrics text|json]\n"
      "          [--failpoint <site>:<spec>]... [--help]\n"
      "types: int64, double, string, date\n"
      "all value flags also accept --flag=value\n"
      "--threads: 0 = hardware concurrency (default), 1 = serial; the\n"
      "answer is identical at every setting\n"
      "--shards: in-process fault domains for the by-tuple pass (default 1\n"
      "= off); fault-free answers are identical at every setting, shard\n"
      "failures degrade locally (see stats degraded_shards)\n"
      "--failpoint: arm a fault-injection site, e.g.\n"
      "  --failpoint=storage/csv/read-file:once*error(unavailable)\n"
      "(repeatable; the AQUA_FAILPOINTS env var uses site=spec;... form)\n"
      "--sampler-seed: RNG seed of the degraded-mode Monte-Carlo sampler\n"
      "exit codes: 0 = answered, 1 = runtime/query error, 2 = usage error\n",
      argv0);
}

int Usage(const char* argv0) {
  PrintUsage(stderr, argv0);
  return kExitUsage;
}

/// Installs the trace sink for the scope of the query run and writes the
/// file on the way out (including error paths).
class ScopedTrace {
 public:
  explicit ScopedTrace(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) obs::InstallTraceSink(&sink_);
  }
  ~ScopedTrace() {
    if (path_.empty()) return;
    obs::UninstallTraceSink();
    const Status written = sink_.WriteFile(path_);
    if (written.ok()) {
      std::fprintf(stderr, "trace: wrote %zu spans to %s\n", sink_.size(),
                   path_.c_str());
    } else {
      std::fprintf(stderr, "trace: %s\n", written.ToString().c_str());
    }
  }

 private:
  const std::string path_;
  obs::TraceSink sink_;
};

void DumpMetrics(cli::MetricsFormat format) {
  if (format == cli::MetricsFormat::kOff) return;
  const auto& registry = obs::MetricsRegistry::Default();
  const std::string rendered = format == cli::MetricsFormat::kText
                                   ? registry.RenderPrometheusText()
                                   : registry.RenderJson();
  std::fprintf(stderr, "%s", rendered.c_str());
  if (!rendered.empty() && rendered.back() != '\n') std::fprintf(stderr, "\n");
}

int RunCli(const CliOptions& options) {
  // A malformed --schema spec is a mistake in the invocation, not in the
  // data on disk, so it exits 2 like any other bad flag value.
  const auto schema = cli::ParseSchemaSpec(options.schema_spec);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    return kExitUsage;
  }
  const auto table = Csv::ReadFile(options.data_path, *schema);
  if (!table.ok()) {
    std::fprintf(stderr, "data: %s\n", table.status().ToString().c_str());
    return kExitRuntime;
  }
  const auto schema_mapping = PMappingText::ReadSchemaFile(options.mapping_path);
  if (!schema_mapping.ok()) {
    std::fprintf(stderr, "mapping: %s\n",
                 schema_mapping.status().ToString().c_str());
    return kExitRuntime;
  }
  if (schema_mapping->size() != 1) {
    std::fprintf(stderr,
                 "mapping: expected exactly one pmapping block, got %zu\n",
                 schema_mapping->size());
    return kExitRuntime;
  }
  const PMapping& pmapping_value = schema_mapping->mapping(0);
  const PMapping* pmapping = &pmapping_value;

  const Engine engine(options.engine);
  // In --stats-json mode stdout carries exactly one JSON document, so the
  // human-facing banner moves to stderr.
  std::fprintf(options.stats_json ? stderr : stdout,
               "loaded %zu rows; %zu candidate mappings (%s => %s)\n",
               table->num_rows(), pmapping->size(),
               pmapping->source_relation().c_str(),
               pmapping->target_relation().c_str());

  if (options.explain) {
    const auto parsed = SqlParser::Parse(options.query);
    if (parsed.ok() && parsed->kind == ParsedQuery::Kind::kSimple) {
      const auto plan =
          engine.Explain(parsed->simple, options.mapping_semantics,
                         options.aggregate_semantics);
      std::fprintf(options.stats_json ? stderr : stdout, "plan: %s\n",
                   plan.ok() ? plan->c_str()
                             : plan.status().ToString().c_str());
    }
  }

  ScopedTrace trace(options.trace_path);

  // Ungrouped/nested first, then grouped.
  const auto answer =
      engine.AnswerSql(options.query, *pmapping, *table,
                       options.mapping_semantics, options.aggregate_semantics);
  if (answer.ok()) {
    if (options.stats_json) {
      std::printf("{\"query\":\"%s\",\"answer\":%s}\n",
                  obs::JsonEscape(options.query).c_str(),
                  cli::AnswerToJson(*answer).c_str());
    } else {
      std::printf("%s\n", answer->ToString().c_str());
      if (options.stats) {
        std::printf("stats: %s\n", answer->stats.ToString().c_str());
      }
      if (options.histogram_bins > 0 &&
          answer->semantics == AggregateSemantics::kDistribution) {
        const auto bins =
            answer->distribution.ToHistogram(options.histogram_bins);
        if (bins.ok()) {
          for (const auto& b : *bins) {
            const int width = static_cast<int>(b.mass * 60);
            std::printf("[%10.4g, %10.4g) %6.3f %s\n", b.low, b.high, b.mass,
                        std::string(static_cast<size_t>(width), '#').c_str());
          }
        }
      }
    }
    DumpMetrics(options.metrics);
    return kExitOk;
  }
  const bool was_grouped_shape =
      answer.status().message().find("use AnswerGroupedSql") !=
      std::string::npos;
  const auto grouped = engine.AnswerGroupedSql(
      options.query, *pmapping, *table, options.mapping_semantics,
      options.aggregate_semantics);
  if (grouped.ok()) {
    if (options.stats_json) {
      std::printf("{\"query\":\"%s\",\"groups\":%s}\n",
                  obs::JsonEscape(options.query).c_str(),
                  cli::GroupedToJson(*grouped).c_str());
    } else {
      for (const GroupedAnswer& g : *grouped) {
        std::printf("%-14s %s\n", g.group.ToString().c_str(),
                    g.answer.ToString().c_str());
        if (options.stats) {
          std::printf("  stats: %s\n", g.answer.stats.ToString().c_str());
        }
      }
    }
    DumpMetrics(options.metrics);
    return kExitOk;
  }
  // Report the error from whichever path matched the statement's shape.
  std::fprintf(stderr, "query: %s\n",
               was_grouped_shape ? grouped.status().ToString().c_str()
                                 : answer.status().ToString().c_str());
  DumpMetrics(options.metrics);
  return kExitRuntime;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = cli::ParseCliArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return Usage(argv[0]);
  }
  if (options->help) {
    PrintUsage(stdout, argv[0]);
    return kExitOk;
  }
  const Status env_faults = fault::ConfigureFromEnv();
  if (!env_faults.ok()) {
    std::fprintf(stderr, "AQUA_FAILPOINTS: %s\n",
                 env_faults.ToString().c_str());
    return kExitUsage;
  }
  for (const std::string& fp : options->failpoints) {
    const size_t colon = fp.find(':');
    const Status armed =
        fault::Enable(fp.substr(0, colon), fp.substr(colon + 1));
    if (!armed.ok()) {
      std::fprintf(stderr, "--failpoint=%s: %s\n", fp.c_str(),
                   armed.ToString().c_str());
      return kExitUsage;
    }
  }
  return RunCli(*options);
}
