// aqua_cli — run an aggregate query over a CSV source under an uncertain
// schema mapping, from the command line.
//
//   aqua_cli --data bids.csv
//            --schema "transactionID:int64,auction:int64,time:double,
//                      bid:double,currentPrice:double"
//            --mapping matcher_output.pmapping
//            --query "SELECT SUM(price) FROM T2 WHERE auctionId = 34"
//            [--semantics by-tuple] [--answer range|distribution|expected]
//            [--histogram N] [--explain]
//            [--timeout-ms N] [--max-sequences N] [--degrade off|sample]
//
// The mapping file uses the PMappingText format (see
// src/aqua/mapping/serialize.h); the query's FROM relation must be the
// mapping's target relation.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "aqua/common/string_util.h"
#include "aqua/core/engine.h"
#include "aqua/mapping/serialize.h"
#include "aqua/query/parser.h"
#include "aqua/storage/csv.h"

namespace {

using namespace aqua;

struct CliOptions {
  std::string data_path;
  std::string schema_spec;
  std::string mapping_path;
  std::string query;
  MappingSemantics mapping_semantics = MappingSemantics::kByTuple;
  AggregateSemantics aggregate_semantics = AggregateSemantics::kRange;
  size_t histogram_bins = 0;
  bool explain = false;
  EngineOptions engine;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --data <csv> --schema \"name:type,...\" --mapping "
      "<pmapping.txt> --query \"SELECT ...\"\n"
      "          [--semantics by-table|by-tuple]\n"
      "          [--answer range|distribution|expected]\n"
      "          [--histogram <bins>] [--explain]\n"
      "          [--timeout-ms <ms>] [--max-sequences <n>]\n"
      "          [--degrade off|sample]\n"
      "types: int64, double, string, date\n",
      argv0);
  return 2;
}

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for " + arg);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--data") {
      AQUA_ASSIGN_OR_RETURN(o.data_path, next());
    } else if (arg == "--schema") {
      AQUA_ASSIGN_OR_RETURN(o.schema_spec, next());
    } else if (arg == "--mapping") {
      AQUA_ASSIGN_OR_RETURN(o.mapping_path, next());
    } else if (arg == "--query") {
      AQUA_ASSIGN_OR_RETURN(o.query, next());
    } else if (arg == "--semantics") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "by-table") {
        o.mapping_semantics = MappingSemantics::kByTable;
      } else if (v == "by-tuple") {
        o.mapping_semantics = MappingSemantics::kByTuple;
      } else {
        return Status::InvalidArgument("unknown --semantics '" + v + "'");
      }
    } else if (arg == "--answer") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      if (v == "range") {
        o.aggregate_semantics = AggregateSemantics::kRange;
      } else if (v == "distribution") {
        o.aggregate_semantics = AggregateSemantics::kDistribution;
      } else if (v == "expected") {
        o.aggregate_semantics = AggregateSemantics::kExpectedValue;
      } else {
        return Status::InvalidArgument("unknown --answer '" + v + "'");
      }
    } else if (arg == "--histogram") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      o.histogram_bins = static_cast<size_t>(std::stoul(v));
    } else if (arg == "--explain") {
      o.explain = true;
    } else if (arg == "--timeout-ms") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      try {
        o.engine.limits.timeout_ms = std::stoll(v);
      } catch (const std::exception&) {
        return Status::InvalidArgument(
            "--timeout-ms expects an integer, got '" + v + "'");
      }
      if (o.engine.limits.timeout_ms <= 0) {
        return Status::InvalidArgument("--timeout-ms must be positive");
      }
    } else if (arg == "--max-sequences") {
      AQUA_ASSIGN_OR_RETURN(std::string v, next());
      try {
        o.engine.naive.max_sequences = std::stoull(v);
      } catch (const std::exception&) {
        return Status::InvalidArgument(
            "--max-sequences expects an integer, got '" + v + "'");
      }
    } else if (arg == "--degrade" || StartsWith(arg, "--degrade=")) {
      std::string v;
      if (arg == "--degrade") {
        AQUA_ASSIGN_OR_RETURN(v, next());
      } else {
        v = arg.substr(std::strlen("--degrade="));
      }
      if (v == "off") {
        o.engine.degrade = DegradePolicy::kOff;
      } else if (v == "sample") {
        o.engine.degrade = DegradePolicy::kSample;
      } else {
        return Status::InvalidArgument("unknown --degrade '" + v +
                                       "' (expected off|sample)");
      }
    } else {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    }
  }
  if (o.data_path.empty() || o.schema_spec.empty() ||
      o.mapping_path.empty() || o.query.empty()) {
    return Status::InvalidArgument(
        "--data, --schema, --mapping, and --query are all required");
  }
  return o;
}

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Attribute> attrs;
  for (std::string_view item : Split(spec, ',')) {
    item = Trim(item);
    if (item.empty()) continue;
    const size_t colon = item.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("schema item '" + std::string(item) +
                                     "' is not name:type");
    }
    const std::string name(Trim(item.substr(0, colon)));
    const std::string type = ToLower(Trim(item.substr(colon + 1)));
    ValueType vt;
    if (type == "int64" || type == "int") {
      vt = ValueType::kInt64;
    } else if (type == "double" || type == "real") {
      vt = ValueType::kDouble;
    } else if (type == "string" || type == "text") {
      vt = ValueType::kString;
    } else if (type == "date") {
      vt = ValueType::kDate;
    } else {
      return Status::InvalidArgument("unknown type '" + type + "'");
    }
    attrs.push_back(Attribute{name, vt});
  }
  return Schema::Make(std::move(attrs));
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int RunCli(const CliOptions& options) {
  const auto schema = ParseSchemaSpec(options.schema_spec);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  const auto table = Csv::ReadFile(options.data_path, *schema);
  if (!table.ok()) {
    std::fprintf(stderr, "data: %s\n", table.status().ToString().c_str());
    return 1;
  }
  const auto mapping_text = ReadFileToString(options.mapping_path);
  if (!mapping_text.ok()) {
    std::fprintf(stderr, "mapping: %s\n",
                 mapping_text.status().ToString().c_str());
    return 1;
  }
  const auto pmapping = PMappingText::Parse(*mapping_text);
  if (!pmapping.ok()) {
    std::fprintf(stderr, "mapping: %s\n",
                 pmapping.status().ToString().c_str());
    return 1;
  }

  const Engine engine(options.engine);
  std::printf("loaded %zu rows; %zu candidate mappings (%s => %s)\n",
              table->num_rows(), pmapping->size(),
              pmapping->source_relation().c_str(),
              pmapping->target_relation().c_str());

  if (options.explain) {
    const auto parsed = SqlParser::Parse(options.query);
    if (parsed.ok() && parsed->kind == ParsedQuery::Kind::kSimple) {
      const auto plan =
          engine.Explain(parsed->simple, options.mapping_semantics,
                         options.aggregate_semantics);
      std::printf("plan: %s\n",
                  plan.ok() ? plan->c_str() : plan.status().ToString().c_str());
    }
  }

  // Ungrouped/nested first, then grouped.
  const auto answer =
      engine.AnswerSql(options.query, *pmapping, *table,
                       options.mapping_semantics, options.aggregate_semantics);
  if (answer.ok()) {
    std::printf("%s\n", answer->ToString().c_str());
    if (options.histogram_bins > 0 &&
        answer->semantics == AggregateSemantics::kDistribution) {
      const auto bins = answer->distribution.ToHistogram(options.histogram_bins);
      if (bins.ok()) {
        for (const auto& b : *bins) {
          const int width = static_cast<int>(b.mass * 60);
          std::printf("[%10.4g, %10.4g) %6.3f %s\n", b.low, b.high, b.mass,
                      std::string(static_cast<size_t>(width), '#').c_str());
        }
      }
    }
    return 0;
  }
  const bool was_grouped_shape =
      answer.status().message().find("use AnswerGroupedSql") !=
      std::string::npos;
  const auto grouped = engine.AnswerGroupedSql(
      options.query, *pmapping, *table, options.mapping_semantics,
      options.aggregate_semantics);
  if (grouped.ok()) {
    for (const GroupedAnswer& g : *grouped) {
      std::printf("%-14s %s\n", g.group.ToString().c_str(),
                  g.answer.ToString().c_str());
    }
    return 0;
  }
  // Report the error from whichever path matched the statement's shape.
  std::fprintf(stderr, "query: %s\n",
               was_grouped_shape ? grouped.status().ToString().c_str()
                                 : answer.status().ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return Usage(argv[0]);
  }
  return RunCli(*options);
}
